//! Exact density-matrix execution: the [`DensityMatrix`] backend evolves
//! `ρ` under the circuit IR and applies the depolarizing and readout-flip
//! channels **exactly** through their Kraus operators, so every noise
//! figure it produces is an expectation value — no Monte-Carlo trajectory
//! variance, no averaging over repetitions.
//!
//! # Representation
//!
//! `ρ` is stored row-major as a flat buffer of `4^n` amplitudes: entry
//! `ρ[r][c]` lives at flat index `r·2^n + c`. That buffer is carried inside
//! a [`QuantumState`] on `2n` qubits (the vectorization `vec(ρ)`), which
//! lets the backend reuse the pooled-buffer plumbing of the [`Backend`]
//! trait: a unitary `U` acts as `vec(ρ) → (U ⊗ U*) vec(ρ)`, i.e. `U`
//! applied to the row bits (flat bits `n..2n`) and `U*` to the column bits
//! (flat bits `0..n`). The state returned by [`Backend::prepare`] is this
//! execution representation — it is **not** a pure state on `n` qubits, so
//! only hand it back into the same backend (see [`Backend::pure_state`]).
//!
//! # Noise channels
//!
//! * **Depolarizing** (per gate, per touched qubit, probability `p`):
//!   `ρ → (1−p)ρ + (p/3)(XρX + YρY + ZρZ)` — exactly the channel whose
//!   trajectories [`NoisyStatevector`](crate::backend::NoisyStatevector)
//!   samples (with probability `p` insert a uniformly random Pauli).
//!   Averaging the noisy backend's trajectories over seeds converges to
//!   this backend's `ρ` at the Monte-Carlo `O(1/√trajectories)` rate; the
//!   convergence is pinned by `tests/noise_convergence.rs`.
//! * **Readout flips** (per bit, probability `e`): applied analytically to
//!   the outcome distribution `diag(ρ)` as one pairwise convolution per
//!   bit, the classical Kraus channel of a biased readout.
//!
//! With both probabilities zero the backend short-circuits every
//! distribution-level read to the same closed forms the
//! [`Statevector`](crate::backend::Statevector) backend uses, so its
//! zero-noise distributions are **bit-exact** — not merely close — and
//! [`Backend::exact_statistics`] reports `true`.
//!
//! Memory is `O(4^n)` and gate cost `O(4^n)` per local gate (against the
//! statevector's `O(2^n)`), which is the price of exactness: use it for
//! noise-model ground truth on small registers, and the trajectory backend
//! when the register outgrows it (see `docs/BACKENDS.md`).

use crate::backend::{Backend, BufferPool};
use crate::circuit::{Circuit, Mat2, Op};
use crate::compile::fuse_single_qubit;
use crate::error::SimError;
use crate::gates;
use crate::qpe::qpe_phase_distribution;
use crate::state::{apply2_flat, apply_controlled2_flat, swap_bits_flat, QuantumState};
use qsc_linalg::{CMatrix, Complex64, C_ONE, C_ZERO};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::TAU;

/// Hard cap on the register width: `4^n` amplitudes at 16 bytes each puts
/// 13 qubits at ~1 GiB, the practical ceiling of an exact-`ρ` simulation.
const MAX_DENSITY_QUBITS: usize = 13;

/// Exact noise-channel execution on the full density matrix — the
/// ground-truth counterpart of the Monte-Carlo
/// [`NoisyStatevector`](crate::backend::NoisyStatevector).
///
/// See the [module docs](self) for the representation and channel
/// definitions, and `docs/BACKENDS.md` for when to choose it.
#[derive(Debug)]
pub struct DensityMatrix {
    pool: BufferPool,
    /// Per-gate, per-touched-qubit depolarizing probability.
    pub depolarizing: f64,
    /// Per-bit readout flip probability.
    pub readout_flip: f64,
    fuse: bool,
}

impl DensityMatrix {
    /// Creates the exact-noise backend.
    ///
    /// # Panics
    ///
    /// Panics unless both probabilities lie in `[0, 1]`.
    pub fn new(depolarizing: f64, readout_flip: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&depolarizing) && (0.0..=1.0).contains(&readout_flip),
            "noise probabilities must lie in [0, 1]"
        );
        Self {
            pool: BufferPool::default(),
            depolarizing,
            readout_flip,
            fuse: false,
        }
    }

    /// Enables the gate-fusion pass before execution: fused circuits have
    /// fewer gates, so the depolarizing channel is applied at fewer points
    /// — the same semantics as
    /// [`NoisyStatevector::with_fusion`](crate::backend::NoisyStatevector::with_fusion),
    /// but on the exact channel instead of its trajectories.
    pub fn with_fusion(mut self) -> Self {
        self.fuse = true;
        self
    }

    /// The exact measurement distribution of an executed state: `diag(ρ)`
    /// pushed through the readout-flip channel — what [`Backend::sample`]
    /// draws its shots from, exposed so callers can read the noisy
    /// distribution with **no sampling at all**.
    ///
    /// # Panics
    ///
    /// Panics if `state` is not a vectorized `ρ` from this backend's
    /// [`Backend::prepare`] (odd qubit count).
    pub fn outcome_distribution(&self, state: &QuantumState) -> Vec<f64> {
        let n = vectorized_width(state);
        let d = 1usize << n;
        let amps = state.amplitudes();
        let mut probs: Vec<f64> = (0..d).map(|m| amps[m * d + m].re.max(0.0)).collect();
        apply_readout_flips(&mut probs, self.readout_flip);
        let total: f64 = probs.iter().sum();
        if total > 0.0 {
            for p in &mut probs {
                *p /= total;
            }
        }
        probs
    }

    /// The purity `tr(ρ²)` of an executed state — 1 for pure states,
    /// decreasing toward `1/2^n` as the depolarizing channel mixes it.
    pub fn purity(&self, state: &QuantumState) -> f64 {
        state.amplitudes().iter().map(|a| a.norm_sqr()).sum()
    }

    /// The trace of an executed state's `ρ` (1 up to rounding: every
    /// channel applied here is trace-preserving).
    pub fn trace(&self, state: &QuantumState) -> f64 {
        let n = vectorized_width(state);
        let d = 1usize << n;
        let amps = state.amplitudes();
        (0..d).map(|m| amps[m * d + m].re).sum()
    }
}

/// System width `n` of a vectorized `ρ` carried on `2n` qubits.
fn vectorized_width(state: &QuantumState) -> usize {
    let q = state.num_qubits();
    assert!(
        q.is_multiple_of(2),
        "state on {q} qubits is not a vectorized density matrix"
    );
    q / 2
}

/// Pushes a probability vector through independent per-bit readout flips
/// (one pairwise convolution per bit) — the shared classical readout
/// channel of the noisy backends.
pub(crate) fn apply_readout_flips(probs: &mut [f64], e: f64) {
    if e <= 0.0 {
        return;
    }
    let bits = probs.len().trailing_zeros() as usize;
    for b in 0..bits {
        let bit = 1usize << b;
        let prev = probs.to_vec();
        for (m, p) in probs.iter_mut().enumerate() {
            *p = (1.0 - e) * prev[m] + e * prev[m ^ bit];
        }
    }
}

/// A mutable view of `vec(ρ)` with the superoperator kernels on it.
struct Rho<'a> {
    buf: &'a mut [Complex64],
    /// System qubits (`ρ` is `2^n × 2^n`).
    n: usize,
}

impl Rho<'_> {
    fn dim(&self) -> usize {
        1usize << self.n
    }

    /// `ρ → U ρ U†` for a single-qubit gate on `q`: `U` on the row bit,
    /// `U*` on the column bit.
    fn gate1(&mut self, g: &Mat2, q: usize) {
        apply2_flat(self.buf, g, 1usize << (q + self.n));
        apply2_flat(self.buf, &conj2(g), 1usize << q);
    }

    /// Controlled `ρ → CU ρ CU†` (`conj(CU)` is `conj(U)` under the same
    /// control).
    fn cgate1(&mut self, g: &Mat2, control: usize, target: usize) {
        apply_controlled2_flat(
            self.buf,
            g,
            1usize << (control + self.n),
            1usize << (target + self.n),
        );
        apply_controlled2_flat(self.buf, &conj2(g), 1usize << control, 1usize << target);
    }

    /// Applies one circuit op as a superoperator.
    fn apply_op(&mut self, op: &Op) -> Result<(), SimError> {
        match *op {
            Op::H(q) => self.gate1(&gates::h(), q),
            Op::X(q) => self.gate1(&gates::x(), q),
            Op::Y(q) => self.gate1(&gates::y(), q),
            Op::Z(q) => self.gate1(&gates::z(), q),
            Op::S(q) => self.gate1(&gates::s(), q),
            Op::T(q) => self.gate1(&gates::t(), q),
            Op::Phase { target, theta } => self.gate1(&gates::phase(theta), target),
            Op::Rz { target, theta } => self.gate1(&gates::rz(theta), target),
            Op::Ry { target, theta } => self.gate1(&gates::ry(theta), target),
            Op::Gate1 { target, ref matrix } => self.gate1(matrix, target),
            Op::Cnot { control, target } => self.cgate1(&gates::x(), control, target),
            Op::CPhase {
                control,
                target,
                theta,
            } => self.cgate1(&gates::phase(theta), control, target),
            Op::Swap(a, b) => {
                swap_bits_flat(self.buf, 1usize << (a + self.n), 1usize << (b + self.n));
                swap_bits_flat(self.buf, 1usize << a, 1usize << b);
            }
            Op::BlockUnitary {
                control,
                ref matrix,
            } => self.block_unitary(matrix, control)?,
            Op::PhaseCascade {
                block_qubits,
                ref phases,
                sign,
            } => self.phase_cascade(block_qubits, phases, sign)?,
        }
        Ok(())
    }

    /// `ρ → (U_blk ⊕ control) ρ (…)†` for a block unitary on the low `s`
    /// qubits: left pass over row blocks (stride-`d` gathers), right pass
    /// over the contiguous column blocks with `U*`.
    fn block_unitary(&mut self, u: &CMatrix, control: Option<usize>) -> Result<(), SimError> {
        let block = u.nrows();
        let d = self.dim();
        if !u.is_square() || !block.is_power_of_two() || block > d {
            return Err(SimError::DimensionMismatch {
                context: format!(
                    "block unitary {}×{} on a density matrix of dim {d}",
                    u.nrows(),
                    u.ncols()
                ),
            });
        }
        let s = block.trailing_zeros() as usize;
        let control_bit = control.map(|c| 1usize << c);
        let mut scratch = vec![C_ZERO; block];

        // Left: rows r = rh·2^s + rl; for fixed (rh, c) the block entries
        // sit at stride d. Ascending-k accumulation matches the pure-state
        // per-block path.
        for rh in 0..(d >> s) {
            let r_base = rh << s;
            if let Some(cb) = control_bit {
                if r_base & cb == 0 {
                    continue;
                }
            }
            for c in 0..d {
                let base = r_base * d + c;
                for (i, slot) in scratch.iter_mut().enumerate() {
                    let row = u.row(i);
                    let mut acc = C_ZERO;
                    for (k, x) in row.iter().enumerate() {
                        acc += *x * self.buf[base + k * d];
                    }
                    *slot = acc;
                }
                for (i, slot) in scratch.iter().enumerate() {
                    self.buf[base + i * d] = *slot;
                }
            }
        }

        // Right: columns c = ch·2^s + cl are contiguous runs; apply U*.
        for r in 0..d {
            for ch in 0..(d >> s) {
                let c_base = ch << s;
                if let Some(cb) = control_bit {
                    if c_base & cb == 0 {
                        continue;
                    }
                }
                let run = &mut self.buf[r * d + c_base..r * d + c_base + block];
                for (i, slot) in scratch.iter_mut().enumerate() {
                    let row = u.row(i);
                    let mut acc = C_ZERO;
                    for (k, x) in row.iter().enumerate() {
                        acc += x.conj() * run[k];
                    }
                    *slot = acc;
                }
                run.copy_from_slice(&scratch);
            }
        }
        Ok(())
    }

    /// The diagonal phase-cascade superoperator: entry `(r, c)` picks up
    /// `e^{i(φ_r − φ_c)}` with `φ_idx = sign · m_idx · θ_{k_idx}`.
    fn phase_cascade(
        &mut self,
        block_qubits: usize,
        phases: &[f64],
        sign: f64,
    ) -> Result<(), SimError> {
        let d = self.dim();
        let block = 1usize << block_qubits;
        if phases.len() != block || block > d {
            return Err(SimError::DimensionMismatch {
                context: format!(
                    "phase cascade: {} phases on a {block_qubits}-qubit block of a ρ of dim {d}",
                    phases.len()
                ),
            });
        }
        let side: Vec<f64> = (0..d)
            .map(|idx| sign * (idx >> block_qubits) as f64 * phases[idx & (block - 1)])
            .collect();
        let mask = d - 1;
        for (i, a) in self.buf.iter_mut().enumerate() {
            *a *= Complex64::cis(side[i >> self.n] - side[i & mask]);
        }
        Ok(())
    }

    /// The exact single-qubit depolarizing channel
    /// `ρ → (1−p)ρ + (p/3)(XρX + YρY + ZρZ)`: entries diagonal in qubit
    /// `q` mix with their double-flipped partner, off-diagonal entries are
    /// damped by `1 − 4p/3` (the X and Y cross terms cancel).
    fn depolarize(&mut self, q: usize, p: f64) {
        let rbit = 1usize << (q + self.n);
        let cbit = 1usize << q;
        let keep = 1.0 - 2.0 * p / 3.0;
        let mix = 2.0 * p / 3.0;
        let damp = 1.0 - 4.0 * p / 3.0;
        for i in 0..self.buf.len() {
            let has_r = i & rbit != 0;
            let has_c = i & cbit != 0;
            if !has_r && !has_c {
                let j = i | rbit | cbit;
                let a = self.buf[i];
                let b = self.buf[j];
                self.buf[i] = a.scale(keep) + b.scale(mix);
                self.buf[j] = a.scale(mix) + b.scale(keep);
            } else if has_r != has_c {
                self.buf[i] = self.buf[i].scale(damp);
            }
        }
    }
}

/// Entrywise conjugate of a 2×2 gate.
fn conj2(g: &Mat2) -> Mat2 {
    [
        [g[0][0].conj(), g[0][1].conj()],
        [g[1][0].conj(), g[1][1].conj()],
    ]
}

impl Backend for DensityMatrix {
    fn name(&self) -> &'static str {
        if self.fuse {
            "density_matrix_fused"
        } else {
            "density_matrix"
        }
    }

    /// Prepares `vec(|basis⟩⟨basis|)` — a [`QuantumState`] on
    /// `2·num_qubits` qubits holding the `4^num_qubits` entries of `ρ`.
    fn prepare(&self, num_qubits: usize, basis_index: usize) -> QuantumState {
        assert!(
            num_qubits <= MAX_DENSITY_QUBITS,
            "density-matrix backend supports at most {MAX_DENSITY_QUBITS} qubits (O(4^n) memory)"
        );
        let d = 1usize << num_qubits;
        assert!(basis_index < d, "basis index out of range");
        let mut buf = self.pool.acquire(d * d);
        buf[basis_index * d + basis_index] = C_ONE;
        QuantumState::from_raw(buf)
    }

    /// Budget-checked prepare for the `4^n` vectorized `ρ`: the 2^n/4^n
    /// asymmetry is exactly why the estimate must come from the backend —
    /// a register that fits a statevector budget can exceed it squared.
    fn try_prepare(&self, num_qubits: usize, basis_index: usize) -> Result<QuantumState, SimError> {
        let amps = crate::budget::register_amplitudes(2 * num_qubits);
        crate::budget::check_allocation(amps, self.name())?;
        if num_qubits > MAX_DENSITY_QUBITS {
            return Err(SimError::BudgetExceeded {
                requested_bytes: amps.saturating_mul(crate::budget::AMP_BYTES),
                budget_bytes: crate::budget::register_amplitudes(2 * MAX_DENSITY_QUBITS)
                    .saturating_mul(crate::budget::AMP_BYTES),
                context: format!(
                    "density-matrix register of {num_qubits} qubits exceeds the \
                     {MAX_DENSITY_QUBITS}-qubit cap (O(4^n) memory)"
                ),
            });
        }
        if basis_index >= (1usize << num_qubits) {
            return Err(SimError::InvalidParameter {
                context: format!("basis index {basis_index} out of range for {num_qubits} qubits"),
            });
        }
        Ok(self.prepare(num_qubits, basis_index))
    }

    fn run(
        &self,
        circuit: &Circuit,
        state: &mut QuantumState,
        _rng: &mut StdRng,
    ) -> Result<(), SimError> {
        crate::backend::injected_run_fault()?;
        let fused_storage;
        let to_run = if self.fuse {
            fused_storage = fuse_single_qubit(circuit);
            &fused_storage
        } else {
            circuit
        };
        let n = to_run.num_qubits();
        if state.num_qubits() != 2 * n {
            return Err(SimError::DimensionMismatch {
                context: format!(
                    "density backend: circuit on {n} qubits needs a vectorized ρ on {} qubits, \
                     state has {}",
                    2 * n,
                    state.num_qubits()
                ),
            });
        }
        let mut rho = Rho {
            buf: state.amps_mut(),
            n,
        };
        let all_qubits: Vec<usize> = (0..n).collect();
        for op in to_run.ops() {
            rho.apply_op(op)?;
            if self.depolarizing > 0.0 {
                let touched = if op.spans_register() {
                    all_qubits.clone()
                } else {
                    op.qubits()
                };
                for q in touched {
                    rho.depolarize(q, self.depolarizing);
                }
            }
        }
        Ok(())
    }

    /// Draws `shots` outcomes from the **exact** noisy distribution
    /// ([`DensityMatrix::outcome_distribution`]): the only randomness left
    /// is the multinomial draw itself — the state carries no trajectory
    /// noise.
    fn sample(
        &self,
        state: &QuantumState,
        shots: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<(usize, usize)>, SimError> {
        let probs = self.outcome_distribution(state);
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..shots {
            let mut target = rng.gen::<f64>();
            let mut chosen = probs.len() - 1;
            for (m, &p) in probs.iter().enumerate() {
                if target < p {
                    chosen = m;
                    break;
                }
                target -= p;
            }
            *counts.entry(chosen).or_insert(0usize) += 1;
        }
        Ok(counts.into_iter().collect())
    }

    fn recycle(&self, state: QuantumState) {
        self.pool.release(state.into_amplitudes());
    }

    fn exact_statistics(&self) -> bool {
        self.depolarizing == 0.0 && self.readout_flip == 0.0
    }

    /// The states this backend hands out are vectorized density matrices,
    /// not pure-state amplitude vectors.
    fn pure_state(&self) -> bool {
        false
    }

    /// The depolarizing register pass evolves a `4^t`-entry `ρ`, bounded
    /// by the same memory cap as [`Backend::prepare`]. With zero
    /// depolarizing the hook short-circuits to the `O(2^t)` closed forms,
    /// so no limit applies.
    fn phase_register_limit(&self) -> Option<usize> {
        (self.depolarizing > 0.0).then_some(MAX_DENSITY_QUBITS)
    }

    /// The **exact** noisy QPE register distribution: the `t`-qubit
    /// register pass (Hadamard wall, the `e^{2πiφ·2^j}` phase kicks of the
    /// controlled powers on an eigenstate, inverse QFT) is evolved as a
    /// density matrix with the per-gate depolarizing channel, then the
    /// outcome distribution is pushed through the readout-flip channel.
    ///
    /// With zero noise this short-circuits to the closed-form Fejér kernel
    /// — **bit-exact** with the `Statevector` backend. Contrast with
    /// `NoisyStatevector::phase_distribution`, which *approximates* the
    /// depolarizing effect by a single global survival factor.
    fn phase_distribution(
        &self,
        phi: f64,
        t: usize,
        _rng: &mut StdRng,
    ) -> Result<Vec<f64>, SimError> {
        if self.depolarizing == 0.0 {
            let mut probs = qpe_phase_distribution(phi, t);
            apply_readout_flips(&mut probs, self.readout_flip);
            return Ok(probs);
        }
        let mut register = Circuit::new(t);
        for j in 0..t {
            register.push(Op::H(j)).expect("register op");
        }
        for j in 0..t {
            register
                .push(Op::Phase {
                    target: j,
                    theta: TAU * phi * (1u64 << j) as f64,
                })
                .expect("register op");
        }
        register.push_inverse_qft(0..t).expect("register op");

        let mut rng = StdRng::seed_from_u64(0); // never drawn from
        let mut state = self.prepare(t, 0);
        self.run(&register, &mut state, &mut rng)
            .expect("register pass is well-formed");
        let probs = self.outcome_distribution(&state);
        self.recycle(state);
        Ok(probs)
    }

    /// Readout bias applied analytically: `p(1−e) + (1−p)e` — no shot
    /// resampling, so repeated calls return the identical value.
    fn estimate_probability(&self, p: f64, _rng: &mut StdRng) -> Result<f64, SimError> {
        if self.readout_flip == 0.0 {
            return Ok(p);
        }
        Ok(p * (1.0 - self.readout_flip) + (1.0 - p) * self.readout_flip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{NoisyStatevector, Statevector};
    use std::sync::Arc;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Op::H(0)).unwrap();
        c.push(Op::Cnot {
            control: 0,
            target: 1,
        })
        .unwrap();
        c
    }

    /// A circuit covering every op variant the compilers emit.
    fn kitchen_sink(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.push(Op::H(0)).unwrap();
        c.push(Op::T(1)).unwrap();
        c.push(Op::Ry {
            target: 1,
            theta: 0.4,
        })
        .unwrap();
        c.push(Op::Cnot {
            control: 0,
            target: n - 1,
        })
        .unwrap();
        c.push(Op::CPhase {
            control: n - 1,
            target: 0,
            theta: 0.7,
        })
        .unwrap();
        c.push(Op::Swap(0, 1)).unwrap();
        c.push(Op::Gate1 {
            target: 0,
            matrix: gates::rz(0.3),
        })
        .unwrap();
        c.push(Op::S(n - 1)).unwrap();
        c.push(Op::Y(1)).unwrap();
        let u = CMatrix::from_rows(&[
            vec![Complex64::cis(0.2), C_ZERO],
            vec![C_ZERO, Complex64::cis(-0.5)],
        ])
        .unwrap();
        c.push(Op::BlockUnitary {
            control: Some(n - 1),
            matrix: Arc::new(u.clone()),
        })
        .unwrap();
        c.push(Op::BlockUnitary {
            control: None,
            matrix: Arc::new(u),
        })
        .unwrap();
        c.push(Op::PhaseCascade {
            block_qubits: 1,
            phases: Arc::new(vec![0.3, -0.8]),
            sign: -1.0,
        })
        .unwrap();
        c
    }

    fn diag(backend: &DensityMatrix, state: &QuantumState) -> Vec<f64> {
        let n = state.num_qubits() / 2;
        let d = 1usize << n;
        let _ = backend;
        (0..d).map(|m| state.amplitudes()[m * d + m].re).collect()
    }

    #[test]
    fn zero_noise_evolution_matches_statevector_outer_product() {
        let c = kitchen_sink(3);
        let dm = DensityMatrix::new(0.0, 0.0);
        let sv = Statevector::new();
        let mut rng = StdRng::seed_from_u64(1);
        for basis in [0usize, 3, 7] {
            let rho = dm.execute(&c, basis, &mut rng).unwrap();
            let pure = sv.execute(&c, basis, &mut rng).unwrap();
            let amps = pure.amplitudes();
            let d = amps.len();
            let mut err = 0.0f64;
            for r in 0..d {
                for col in 0..d {
                    let expect = amps[r] * amps[col].conj();
                    err = err.max((rho.amplitudes()[r * d + col] - expect).abs());
                }
            }
            assert!(err < 1e-12, "ρ vs |ψ⟩⟨ψ| drift {err} on basis {basis}");
            assert!((dm.purity(&rho) - 1.0).abs() < 1e-12);
            dm.recycle(rho);
            sv.recycle(pure);
        }
    }

    #[test]
    fn channels_preserve_trace_and_reduce_purity() {
        let c = kitchen_sink(3);
        let dm = DensityMatrix::new(0.1, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let rho = dm.execute(&c, 0, &mut rng).unwrap();
        assert!((dm.trace(&rho) - 1.0).abs() < 1e-12, "trace drift");
        assert!(dm.purity(&rho) < 1.0 - 1e-6, "noise must mix the state");
        let probs = dm.outcome_distribution(&rho);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(probs.iter().all(|&p| p >= 0.0));
        dm.recycle(rho);
    }

    #[test]
    fn readout_flip_channel_is_analytically_exact_on_bell() {
        // Ideal Bell diag = (1/2, 0, 0, 1/2); per-bit flips e move exactly
        // e(1−e) of mass onto each off-support outcome.
        let dm = DensityMatrix::new(0.0, 0.25);
        let mut rng = StdRng::seed_from_u64(3);
        let rho = dm.execute(&bell(), 0, &mut rng).unwrap();
        let probs = dm.outcome_distribution(&rho);
        let e = 0.25f64;
        assert!((probs[0b01] - e * (1.0 - e)).abs() < 1e-12);
        assert!((probs[0b10] - e * (1.0 - e)).abs() < 1e-12);
        assert!((probs[0b01] + probs[0b10] - 0.375).abs() < 1e-12);
        dm.recycle(rho);
    }

    #[test]
    fn full_depolarizing_drives_one_qubit_to_maximally_mixed() {
        // p = 1 on a single-qubit H circuit: ρ loses 4/3 of its coherence
        // per channel application; at p = 3/4 the channel is exactly the
        // replacement channel ρ → I/2.
        let mut c = Circuit::new(1);
        c.push(Op::H(0)).unwrap();
        let dm = DensityMatrix::new(0.75, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        let rho = dm.execute(&c, 0, &mut rng).unwrap();
        let probs = dm.outcome_distribution(&rho);
        assert!((probs[0] - 0.5).abs() < 1e-12);
        assert!((probs[1] - 0.5).abs() < 1e-12);
        assert!((dm.purity(&rho) - 0.5).abs() < 1e-12, "I/2 has purity 1/2");
        dm.recycle(rho);
    }

    #[test]
    fn zero_noise_distribution_hooks_are_bit_exact() {
        let dm = DensityMatrix::new(0.0, 0.0);
        let sv = Statevector::new();
        let mut rng = StdRng::seed_from_u64(5);
        for t in [3usize, 5] {
            for phi in [0.0, 0.3, 0.8125] {
                assert_eq!(
                    dm.phase_distribution(phi, t, &mut rng).unwrap(),
                    sv.phase_distribution(phi, t, &mut rng).unwrap(),
                    "phi {phi} t {t}"
                );
            }
        }
        assert_eq!(dm.estimate_probability(0.37, &mut rng).unwrap(), 0.37);
        assert!(dm.exact_statistics());
        assert!(!DensityMatrix::new(0.01, 0.0).exact_statistics());
    }

    #[test]
    fn noisy_phase_distribution_is_deterministic_and_flattened() {
        let dm = DensityMatrix::new(0.05, 0.0);
        let mut rng = StdRng::seed_from_u64(6);
        let a = dm.phase_distribution(0.25, 4, &mut rng).unwrap();
        let b = dm.phase_distribution(0.25, 4, &mut rng).unwrap();
        assert_eq!(a, b, "exact channel: no run-to-run variance");
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let ideal = qpe_phase_distribution(0.25, 4);
        let peak = |d: &[f64]| d.iter().cloned().fold(0.0, f64::max);
        assert!(peak(&a) < peak(&ideal), "noise must flatten the peak");
    }

    #[test]
    fn depolarizing_matches_trajectory_average_on_one_gate() {
        // One X gate at p = 0.3 on |0⟩: exact channel vs the closed-form
        // trajectory average. With probability p a uniform Pauli follows
        // the X, so P(1) = 1 − 2p/3 exactly.
        let mut c = Circuit::new(1);
        c.push(Op::X(0)).unwrap();
        let p = 0.3;
        let dm = DensityMatrix::new(p, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let rho = dm.execute(&c, 0, &mut rng).unwrap();
        let probs = diag(&dm, &rho);
        assert!((probs[1] - (1.0 - 2.0 * p / 3.0)).abs() < 1e-12);
        assert!((probs[0] - 2.0 * p / 3.0).abs() < 1e-12);
        dm.recycle(rho);
    }

    #[test]
    fn trajectory_mean_converges_to_exact_channel() {
        // Average NoisyStatevector outcome distributions over trajectories;
        // the L1 distance to the exact ρ diagonal must shrink.
        let c = kitchen_sink(3);
        let p = 0.15;
        let dm = DensityMatrix::new(p, 0.0);
        let mut rng = StdRng::seed_from_u64(8);
        let rho = dm.execute(&c, 0, &mut rng).unwrap();
        let exact = diag(&dm, &rho);
        dm.recycle(rho);

        let noisy = NoisyStatevector::new(p, 0.0);
        let mean_dist = |trajectories: usize| -> Vec<f64> {
            let mut acc = vec![0.0f64; exact.len()];
            for seed in 0..trajectories as u64 {
                let mut rng = StdRng::seed_from_u64(1000 + seed);
                let state = noisy.execute(&c, 0, &mut rng).unwrap();
                for (slot, a) in acc.iter_mut().zip(state.amplitudes()) {
                    *slot += a.norm_sqr();
                }
                noisy.recycle(state);
            }
            acc.iter().map(|x| x / trajectories as f64).collect()
        };
        let l1 = |got: &[f64]| -> f64 { got.iter().zip(&exact).map(|(a, b)| (a - b).abs()).sum() };
        let coarse = l1(&mean_dist(16));
        let fine = l1(&mean_dist(512));
        assert!(
            fine < coarse / 2.0,
            "trajectory mean must converge to the exact channel: {coarse} vs {fine}"
        );
        // The Monte-Carlo floor at 512 trajectories (the multi-level
        // convergence-rate check lives in tests/noise_convergence.rs).
        assert!(fine < 0.15, "512 trajectories should be close: {fine}");
    }

    #[test]
    fn sample_draws_from_the_exact_distribution() {
        let dm = DensityMatrix::new(0.0, 0.25);
        let mut rng = StdRng::seed_from_u64(9);
        let rho = dm.execute(&bell(), 0, &mut rng).unwrap();
        let counts = dm.sample(&rho, 4000, &mut rng).unwrap();
        let total: usize = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 4000);
        let off: usize = counts
            .iter()
            .filter(|(m, _)| *m == 0b01 || *m == 0b10)
            .map(|(_, c)| *c)
            .sum();
        assert!(
            (off as f64 / 4000.0 - 0.375).abs() < 0.05,
            "off-support fraction {off}"
        );
        dm.recycle(rho);
    }

    #[test]
    fn run_rejects_width_mismatch_and_is_not_pure() {
        let dm = DensityMatrix::new(0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(10);
        let mut state = dm.prepare(2, 0);
        assert_eq!(state.num_qubits(), 4, "vec(ρ) lives on 2n qubits");
        assert!(dm.run(&Circuit::new(3), &mut state, &mut rng).is_err());
        assert!(!dm.pure_state());
        dm.recycle(state);
    }

    #[test]
    fn fused_execution_matches_unfused_channel() {
        // Fusion changes *where* the depolarizing channel is applied; at
        // zero noise it must not change ρ beyond rounding.
        let c = kitchen_sink(3);
        let plain = DensityMatrix::new(0.0, 0.0);
        let fused = DensityMatrix::new(0.0, 0.0).with_fusion();
        let mut rng = StdRng::seed_from_u64(11);
        let a = plain.execute(&c, 0, &mut rng).unwrap();
        let b = fused.execute(&c, 0, &mut rng).unwrap();
        let err = a
            .amplitudes()
            .iter()
            .zip(b.amplitudes())
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-12, "fusion drift {err}");
        assert_eq!(fused.name(), "density_matrix_fused");
        plain.recycle(a);
        fused.recycle(b);
    }
}
