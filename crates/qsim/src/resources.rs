//! Resource estimation: how many qubits and gates the pipeline's circuits
//! would need on hardware.
//!
//! The simulator executes unitaries as matrices, so gate counts are
//! *modeled*, not traced: each controlled application of `e^{iHt}` for the
//! `n×n` Laplacian is charged via a sparse-Hamiltonian-simulation cost model
//! (`CU_GATE_FACTOR · s²` two-qubit gates for an `s`-qubit system). The
//! model is documented here precisely so the forecast numbers can be read
//! with the right error bars; it matches the order-of-magnitude accounting
//! such papers report.

use serde::{Deserialize, Serialize};

/// Modeled two-qubit-gate cost of one controlled-`U` application on an
/// `s`-qubit system (sparse Hamiltonian simulation heuristic).
pub const CU_GATE_FACTOR: usize = 20;

/// Gate/qubit/depth estimate for a circuit or pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// Total qubits (system + phase register + ancillas).
    pub qubits: usize,
    /// Single-qubit gate count.
    pub single_qubit_gates: usize,
    /// Two-qubit gate count.
    pub two_qubit_gates: usize,
    /// Modeled circuit depth (sequential layers).
    pub depth: usize,
}

impl ResourceEstimate {
    /// Sums two estimates executed sequentially (qubits take the max,
    /// gates and depth add).
    pub fn then(self, later: ResourceEstimate) -> ResourceEstimate {
        ResourceEstimate {
            qubits: self.qubits.max(later.qubits),
            single_qubit_gates: self.single_qubit_gates + later.single_qubit_gates,
            two_qubit_gates: self.two_qubit_gates + later.two_qubit_gates,
            depth: self.depth + later.depth,
        }
    }

    /// Scales the gate counts and depth by a repetition factor.
    pub fn repeated(self, times: usize) -> ResourceEstimate {
        ResourceEstimate {
            qubits: self.qubits,
            single_qubit_gates: self.single_qubit_gates * times,
            two_qubit_gates: self.two_qubit_gates * times,
            depth: self.depth * times,
        }
    }

    /// Total gate count.
    pub fn total_gates(&self) -> usize {
        self.single_qubit_gates + self.two_qubit_gates
    }
}

/// Number of qubits needed to amplitude-encode a dimension-`n` vector.
pub fn qubits_for_dimension(n: usize) -> usize {
    n.next_power_of_two().trailing_zeros() as usize
}

/// Resources of a `t`-bit QFT (or inverse QFT): `t` Hadamards,
/// `t(t−1)/2` controlled phases, `⌊t/2⌋` swaps (3 CNOTs each).
pub fn qft_resources(t: usize) -> ResourceEstimate {
    ResourceEstimate {
        qubits: t,
        single_qubit_gates: t,
        two_qubit_gates: t * t.saturating_sub(1) / 2 + 3 * (t / 2),
        depth: 2 * t,
    }
}

/// Resources of one QPE run on an `n`-dimensional system with `t` phase
/// bits: Hadamards, `2^t − 1` controlled-`U` applications (each charged at
/// [`CU_GATE_FACTOR`]`·s²` two-qubit gates), and the inverse QFT.
pub fn qpe_resources(n: usize, t: usize) -> ResourceEstimate {
    let s = qubits_for_dimension(n);
    let cu_apps = (1usize << t).saturating_sub(1);
    let cu = ResourceEstimate {
        qubits: s + t,
        single_qubit_gates: 0,
        two_qubit_gates: cu_apps * CU_GATE_FACTOR * s * s,
        depth: cu_apps * s,
    };
    let hadamards = ResourceEstimate {
        qubits: s + t,
        single_qubit_gates: t,
        two_qubit_gates: 0,
        depth: 1,
    };
    hadamards.then(cu).then(qft_resources(t))
}

/// End-to-end pipeline estimate: one QPE + amplitude amplification
/// (`amplification_rounds` repetitions of the QPE circuit) per data row,
/// times `rows` rows, plus the tomography repetitions (state preparations).
pub fn pipeline_resources(
    n: usize,
    t: usize,
    rows: usize,
    amplification_rounds: usize,
    tomography_shots: usize,
) -> ResourceEstimate {
    let per_row = qpe_resources(n, t)
        .repeated(amplification_rounds.max(1))
        .repeated(tomography_shots.max(1));
    per_row.repeated(rows.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_counts() {
        assert_eq!(qubits_for_dimension(1), 0);
        assert_eq!(qubits_for_dimension(2), 1);
        assert_eq!(qubits_for_dimension(5), 3);
        assert_eq!(qubits_for_dimension(1024), 10);
    }

    #[test]
    fn qft_gate_counts() {
        let r = qft_resources(4);
        assert_eq!(r.single_qubit_gates, 4);
        assert_eq!(r.two_qubit_gates, 6 + 6); // 6 cphases + 2 swaps × 3
    }

    #[test]
    fn qpe_dominated_by_controlled_u() {
        let r = qpe_resources(256, 6);
        assert_eq!(r.qubits, 8 + 6);
        assert!(r.two_qubit_gates > 63 * CU_GATE_FACTOR * 64 - 1);
    }

    #[test]
    fn then_takes_max_qubits_and_adds_gates() {
        let a = ResourceEstimate {
            qubits: 5,
            single_qubit_gates: 10,
            two_qubit_gates: 3,
            depth: 2,
        };
        let b = ResourceEstimate {
            qubits: 8,
            single_qubit_gates: 1,
            two_qubit_gates: 7,
            depth: 4,
        };
        let c = a.then(b);
        assert_eq!(c.qubits, 8);
        assert_eq!(c.single_qubit_gates, 11);
        assert_eq!(c.two_qubit_gates, 10);
        assert_eq!(c.depth, 6);
        assert_eq!(c.total_gates(), 21);
    }

    #[test]
    fn repetition_scales_linearly() {
        let a = qpe_resources(16, 3);
        let b = a.repeated(5);
        assert_eq!(b.two_qubit_gates, 5 * a.two_qubit_gates);
        assert_eq!(b.qubits, a.qubits);
    }

    #[test]
    fn pipeline_monotone_in_everything() {
        let base = pipeline_resources(64, 4, 10, 2, 100);
        assert!(pipeline_resources(128, 4, 10, 2, 100).two_qubit_gates >= base.two_qubit_gates);
        assert!(pipeline_resources(64, 5, 10, 2, 100).two_qubit_gates >= base.two_qubit_gates);
        assert!(pipeline_resources(64, 4, 20, 2, 100).two_qubit_gates >= base.two_qubit_gates);
    }
}
