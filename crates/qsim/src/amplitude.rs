//! Amplitude estimation (Brassard–Høyer–Mosca–Tapp) simulated through its
//! theoretical error model.
//!
//! With `M` Grover iterations, AE returns `p̂ = sin²(θ̂)` where
//! `θ = asin(√p)` and `|θ̂ − θ| ≤ π/M` with high probability — a quadratic
//! improvement over the `1/√shots` of direct sampling. The pipeline uses AE
//! to recover the norms of projected rows.

use crate::error::SimError;
use rand::Rng;
use std::f64::consts::{FRAC_PI_2, PI};

/// Simulates one amplitude-estimation run for true probability `p` with `m`
/// Grover iterations: the angle estimate is perturbed by a uniform error of
/// magnitude at most `π/(2m)` (a conservative instantiation of the BHMT
/// bound).
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] if `p ∉ [0, 1]` or `m == 0`.
///
/// # Examples
///
/// ```
/// use qsc_sim::amplitude::estimate_probability;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), qsc_sim::SimError> {
/// let mut rng = StdRng::seed_from_u64(5);
/// let est = estimate_probability(0.25, 128, &mut rng)?;
/// assert!((est - 0.25).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn estimate_probability<R: Rng>(p: f64, m: usize, rng: &mut R) -> Result<f64, SimError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(SimError::InvalidParameter {
            context: format!("probability {p} outside [0, 1]"),
        });
    }
    if m == 0 {
        return Err(SimError::InvalidParameter {
            context: "amplitude estimation needs at least one iteration".into(),
        });
    }
    let theta = p.sqrt().asin();
    let bound = PI / (2.0 * m as f64);
    let theta_hat = (theta + rng.gen_range(-bound..bound)).clamp(0.0, FRAC_PI_2);
    Ok(theta_hat.sin().powi(2))
}

/// Estimates the ℓ2 norm of a vector whose squared norm, relative to
/// `scale²`, is the amplified probability: `‖v‖ = scale·sin(θ)`. This is
/// how the pipeline reads out `‖row_i‖ = ν·√P_i(00)`.
///
/// # Errors
///
/// Same contract as [`estimate_probability`].
pub fn estimate_norm<R: Rng>(
    true_norm: f64,
    scale: f64,
    m: usize,
    rng: &mut R,
) -> Result<f64, SimError> {
    // `!(x > 0.0)` (rather than `x <= 0.0`) deliberately rejects NaN.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(scale > 0.0) || true_norm < 0.0 || true_norm > scale {
        return Err(SimError::InvalidParameter {
            context: format!("norm {true_norm} / scale {scale} out of range"),
        });
    }
    let p = (true_norm / scale).powi(2);
    let p_hat = estimate_probability(p, m, rng)?;
    Ok(scale * p_hat.sqrt())
}

/// Iterations needed for an additive angle error below `epsilon` (so the
/// probability error is `O(ε)`): `M = ⌈π/(2ε)⌉`.
pub fn iterations_for_error(epsilon: f64) -> usize {
    ((PI / (2.0 * epsilon)).ceil() as usize).max(1)
}

/// Expected number of amplitude-amplification rounds to boost a success
/// probability `p` to Θ(1): `O(1/√p)` (the quadratic speedup over the
/// classical `O(1/p)`).
pub fn amplification_rounds(p: f64) -> usize {
    if p <= 0.0 {
        usize::MAX
    } else {
        (1.0 / p.sqrt()).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimate_within_theoretical_bound() {
        let mut rng = StdRng::seed_from_u64(41);
        for &p in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            for &m in &[8usize, 64, 512] {
                let est = estimate_probability(p, m, &mut rng).unwrap();
                // |θ̂−θ| ≤ π/(2M) ⇒ |p̂−p| ≤ 2·π/(2M) (Lipschitz of sin²).
                let bound = PI / m as f64;
                assert!((est - p).abs() <= bound + 1e-12, "p={p} m={m} est={est}");
            }
        }
    }

    #[test]
    fn error_shrinks_with_iterations() {
        let mut rng = StdRng::seed_from_u64(42);
        let p = 0.37;
        let coarse: f64 = (0..200)
            .map(|_| (estimate_probability(p, 4, &mut rng).unwrap() - p).abs())
            .sum::<f64>()
            / 200.0;
        let fine: f64 = (0..200)
            .map(|_| (estimate_probability(p, 256, &mut rng).unwrap() - p).abs())
            .sum::<f64>()
            / 200.0;
        assert!(fine < coarse / 10.0, "coarse {coarse} fine {fine}");
    }

    #[test]
    fn norm_estimation_round_trip() {
        let mut rng = StdRng::seed_from_u64(43);
        let est = estimate_norm(0.6, 2.0, 512, &mut rng).unwrap();
        assert!((est - 0.6).abs() < 0.02);
    }

    #[test]
    fn estimates_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..100 {
            let est = estimate_probability(0.999, 3, &mut rng).unwrap();
            assert!((0.0..=1.0).contains(&est));
            let est0 = estimate_probability(0.001, 3, &mut rng).unwrap();
            assert!((0.0..=1.0).contains(&est0));
        }
    }

    #[test]
    fn helper_functions() {
        assert!(iterations_for_error(0.01) >= 157);
        assert_eq!(amplification_rounds(1.0), 1);
        assert_eq!(amplification_rounds(0.25), 2);
        assert_eq!(amplification_rounds(0.0), usize::MAX);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let mut rng = StdRng::seed_from_u64(45);
        assert!(estimate_probability(1.5, 8, &mut rng).is_err());
        assert!(estimate_probability(0.5, 0, &mut rng).is_err());
        assert!(estimate_norm(3.0, 2.0, 8, &mut rng).is_err());
        assert!(estimate_norm(1.0, 0.0, 8, &mut rng).is_err());
    }
}
