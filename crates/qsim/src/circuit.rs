//! A small circuit IR: an ordered gate list that can be executed on a
//! [`QuantumState`], inspected for gate counts / depth, and dumped in an
//! OpenQASM-flavoured text form.
//!
//! The pipeline's fast paths act on matrices directly; the IR exists for
//! the gate-level validation circuits and the hardware-forecast tooling,
//! where *what would run on a device* is the object of interest.

use crate::error::SimError;
use crate::gates;
use crate::state::QuantumState;
use std::fmt;

/// One gate application.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Hadamard on a qubit.
    H(usize),
    /// Pauli-X on a qubit.
    X(usize),
    /// Pauli-Y on a qubit.
    Y(usize),
    /// Pauli-Z on a qubit.
    Z(usize),
    /// S gate on a qubit.
    S(usize),
    /// T gate on a qubit.
    T(usize),
    /// Phase gate `diag(1, e^{iθ})`.
    Phase {
        /// Target qubit.
        target: usize,
        /// Phase angle.
        theta: f64,
    },
    /// Rotation about Z.
    Rz {
        /// Target qubit.
        target: usize,
        /// Rotation angle.
        theta: f64,
    },
    /// Rotation about Y.
    Ry {
        /// Target qubit.
        target: usize,
        /// Rotation angle.
        theta: f64,
    },
    /// CNOT.
    Cnot {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Controlled phase.
    CPhase {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
        /// Phase angle.
        theta: f64,
    },
    /// SWAP of two qubits.
    Swap(usize, usize),
}

impl Op {
    /// Qubits this op touches.
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Op::H(q) | Op::X(q) | Op::Y(q) | Op::Z(q) | Op::S(q) | Op::T(q) => vec![q],
            Op::Phase { target, .. } | Op::Rz { target, .. } | Op::Ry { target, .. } => {
                vec![target]
            }
            Op::Cnot { control, target }
            | Op::CPhase {
                control, target, ..
            } => {
                vec![control, target]
            }
            Op::Swap(a, b) => vec![a, b],
        }
    }

    /// `true` for two-qubit ops.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Op::Cnot { .. } | Op::CPhase { .. } | Op::Swap(..))
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::H(q) => write!(f, "h q[{q}];"),
            Op::X(q) => write!(f, "x q[{q}];"),
            Op::Y(q) => write!(f, "y q[{q}];"),
            Op::Z(q) => write!(f, "z q[{q}];"),
            Op::S(q) => write!(f, "s q[{q}];"),
            Op::T(q) => write!(f, "t q[{q}];"),
            Op::Phase { target, theta } => write!(f, "p({theta}) q[{target}];"),
            Op::Rz { target, theta } => write!(f, "rz({theta}) q[{target}];"),
            Op::Ry { target, theta } => write!(f, "ry({theta}) q[{target}];"),
            Op::Cnot { control, target } => write!(f, "cx q[{control}],q[{target}];"),
            Op::CPhase {
                control,
                target,
                theta,
            } => {
                write!(f, "cp({theta}) q[{control}],q[{target}];")
            }
            Op::Swap(a, b) => write!(f, "swap q[{a}],q[{b}];"),
        }
    }
}

/// An ordered list of gates on a fixed-width register.
///
/// # Examples
///
/// ```
/// use qsc_sim::circuit::{Circuit, Op};
/// use qsc_sim::QuantumState;
///
/// # fn main() -> Result<(), qsc_sim::SimError> {
/// let mut bell = Circuit::new(2);
/// bell.push(Op::H(0))?;
/// bell.push(Op::Cnot { control: 0, target: 1 })?;
/// let mut state = QuantumState::zero_state(2);
/// bell.run(&mut state)?;
/// assert!((state.probability(0b11) - 0.5).abs() < 1e-12);
/// assert_eq!(bell.depth(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    ops: Vec<Op>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Self {
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// Appends a gate.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] if the op touches a qubit
    /// outside the register, or [`SimError::InvalidParameter`] if a
    /// two-qubit op uses the same qubit twice.
    pub fn push(&mut self, op: Op) -> Result<(), SimError> {
        let qs = op.qubits();
        for &q in &qs {
            if q >= self.num_qubits {
                return Err(SimError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
        }
        if qs.len() == 2 && qs[0] == qs[1] {
            return Err(SimError::InvalidParameter {
                context: "two-qubit op with identical qubits".into(),
            });
        }
        self.ops.push(op);
        Ok(())
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The gate list.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Total gate count.
    pub fn gate_count(&self) -> usize {
        self.ops.len()
    }

    /// Two-qubit gate count (the hardware-relevant one).
    pub fn two_qubit_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_two_qubit()).count()
    }

    /// Circuit depth: the length of the longest qubit-disjoint layering
    /// (greedy ASAP scheduling).
    pub fn depth(&self) -> usize {
        let mut ready = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for op in &self.ops {
            let start = op.qubits().iter().map(|&q| ready[q]).max().unwrap_or(0);
            let end = start + 1;
            for q in op.qubits() {
                ready[q] = end;
            }
            depth = depth.max(end);
        }
        depth
    }

    /// Executes the circuit on a state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if the state width differs
    /// from the circuit's, and propagates gate errors.
    pub fn run(&self, state: &mut QuantumState) -> Result<(), SimError> {
        if state.num_qubits() != self.num_qubits {
            return Err(SimError::DimensionMismatch {
                context: format!(
                    "circuit on {} qubits, state on {}",
                    self.num_qubits,
                    state.num_qubits()
                ),
            });
        }
        for op in &self.ops {
            match *op {
                Op::H(q) => state.apply_single(&gates::h(), q)?,
                Op::X(q) => state.apply_single(&gates::x(), q)?,
                Op::Y(q) => state.apply_single(&gates::y(), q)?,
                Op::Z(q) => state.apply_single(&gates::z(), q)?,
                Op::S(q) => state.apply_single(&gates::s(), q)?,
                Op::T(q) => state.apply_single(&gates::t(), q)?,
                Op::Phase { target, theta } => state.apply_single(&gates::phase(theta), target)?,
                Op::Rz { target, theta } => state.apply_single(&gates::rz(theta), target)?,
                Op::Ry { target, theta } => state.apply_single(&gates::ry(theta), target)?,
                Op::Cnot { control, target } => state.apply_cnot(control, target)?,
                Op::CPhase {
                    control,
                    target,
                    theta,
                } => state.apply_controlled_phase(control, target, theta)?,
                Op::Swap(a, b) => state.apply_swap(a, b)?,
            }
        }
        Ok(())
    }

    /// Builds the textbook QFT circuit on the whole register (H + controlled
    /// phases + bit-reversal swaps), matching `qsc_sim::qft::apply_qft`.
    pub fn qft(num_qubits: usize) -> Self {
        let mut c = Self::new(num_qubits);
        for i in (0..num_qubits).rev() {
            c.push(Op::H(i)).expect("in range");
            for j in (0..i).rev() {
                let theta = std::f64::consts::PI / (1 << (i - j)) as f64;
                c.push(Op::CPhase {
                    control: j,
                    target: i,
                    theta,
                })
                .expect("in range");
            }
        }
        for i in 0..num_qubits / 2 {
            c.push(Op::Swap(i, num_qubits - 1 - i)).expect("in range");
        }
        c
    }

    /// Dumps an OpenQASM-2-flavoured listing.
    pub fn to_qasm(&self) -> String {
        let mut out = String::new();
        out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
        out.push_str(&format!("qreg q[{}];\n", self.num_qubits));
        for op in &self.ops {
            out.push_str(&format!("{op}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qft::apply_qft;

    #[test]
    fn bell_circuit_runs() {
        let mut c = Circuit::new(2);
        c.push(Op::H(0)).unwrap();
        c.push(Op::Cnot {
            control: 0,
            target: 1,
        })
        .unwrap();
        let mut s = QuantumState::zero_state(2);
        c.run(&mut s).unwrap();
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn qft_circuit_matches_direct_qft() {
        for m in 1..=4usize {
            let c = Circuit::qft(m);
            for j in 0..(1 << m) {
                let mut via_circuit = QuantumState::basis_state(m, j);
                c.run(&mut via_circuit).unwrap();
                let mut direct = QuantumState::basis_state(m, j);
                apply_qft(&mut direct, 0..m).unwrap();
                assert!(via_circuit.fidelity(&direct) > 1.0 - 1e-10, "m={m} j={j}");
            }
        }
    }

    #[test]
    fn depth_of_parallel_gates() {
        let mut c = Circuit::new(3);
        c.push(Op::H(0)).unwrap();
        c.push(Op::H(1)).unwrap();
        c.push(Op::H(2)).unwrap();
        assert_eq!(c.depth(), 1);
        c.push(Op::Cnot {
            control: 0,
            target: 1,
        })
        .unwrap();
        assert_eq!(c.depth(), 2);
        c.push(Op::H(2)).unwrap(); // fits in layer 2
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn counts() {
        let c = Circuit::qft(4);
        assert_eq!(c.gate_count(), 4 + 6 + 2); // H's, cphases, swaps
        assert_eq!(c.two_qubit_count(), 8);
    }

    #[test]
    fn rejects_bad_ops() {
        let mut c = Circuit::new(2);
        assert!(c.push(Op::H(5)).is_err());
        assert!(c
            .push(Op::Cnot {
                control: 1,
                target: 1
            })
            .is_err());
    }

    #[test]
    fn run_checks_width() {
        let c = Circuit::new(2);
        let mut s = QuantumState::zero_state(3);
        assert!(c.run(&mut s).is_err());
    }

    #[test]
    fn qasm_dump_contains_header_and_gates() {
        let mut c = Circuit::new(1);
        c.push(Op::H(0)).unwrap();
        c.push(Op::T(0)).unwrap();
        let qasm = c.to_qasm();
        assert!(qasm.starts_with("OPENQASM 2.0;"));
        assert!(qasm.contains("qreg q[1];"));
        assert!(qasm.contains("h q[0];"));
        assert!(qasm.contains("t q[0];"));
    }

    #[test]
    fn display_of_parametric_ops() {
        let op = Op::CPhase {
            control: 0,
            target: 1,
            theta: 0.5,
        };
        assert_eq!(op.to_string(), "cp(0.5) q[0],q[1];");
    }
}
