//! The circuit IR: an ordered gate list that the execution backends run,
//! inspect for gate counts / depth, and dump in an OpenQASM-flavoured text
//! form.
//!
//! Since the backend redesign this IR is the *execution format* of the
//! quantum stages: the QPE/projection compilers in `qsc_sim::qpe` and
//! `qsc_core::quantum` emit circuits (phase cascades, QFT blocks and
//! controlled-unitary blocks as [`Op`]s) which any
//! [`Backend`](crate::backend::Backend) then executes. The
//! [`compile`](crate::compile) module holds the optimization passes (gate
//! fusion) that rewrite circuits before execution.

use crate::error::SimError;
use crate::gates;
use crate::state::QuantumState;
use qsc_linalg::{CMatrix, Complex64};
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// A 2×2 single-qubit gate matrix (row-major), the payload of
/// [`Op::Gate1`].
pub type Mat2 = [[Complex64; 2]; 2];

/// One gate application.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Hadamard on a qubit.
    H(usize),
    /// Pauli-X on a qubit.
    X(usize),
    /// Pauli-Y on a qubit.
    Y(usize),
    /// Pauli-Z on a qubit.
    Z(usize),
    /// S gate on a qubit.
    S(usize),
    /// T gate on a qubit.
    T(usize),
    /// Phase gate `diag(1, e^{iθ})`.
    Phase {
        /// Target qubit.
        target: usize,
        /// Phase angle.
        theta: f64,
    },
    /// Rotation about Z.
    Rz {
        /// Target qubit.
        target: usize,
        /// Rotation angle.
        theta: f64,
    },
    /// Rotation about Y.
    Ry {
        /// Target qubit.
        target: usize,
        /// Rotation angle.
        theta: f64,
    },
    /// CNOT.
    Cnot {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Controlled phase.
    CPhase {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
        /// Phase angle.
        theta: f64,
    },
    /// SWAP of two qubits.
    Swap(usize, usize),
    /// An arbitrary single-qubit unitary — the output of the gate-fusion
    /// compile pass ([`crate::compile::fuse_single_qubit`]), which folds
    /// runs of adjacent single-qubit gates into one of these.
    Gate1 {
        /// Target qubit.
        target: usize,
        /// The 2×2 gate matrix.
        matrix: Mat2,
    },
    /// A unitary on the **low block** of qubits `0..s` (where the matrix is
    /// `2^s × 2^s`), optionally conditioned on a control qubit above the
    /// block — the controlled-`U^{2^j}` blocks of the QPE compilers.
    BlockUnitary {
        /// Control qubit (must lie above the block), `None` for
        /// unconditional application.
        control: Option<usize>,
        /// The block unitary, shared so repeated powers don't copy.
        matrix: Arc<CMatrix>,
    },
    /// The diagonalized QPE controlled-power cascade: with the system block
    /// `0..s` expressed in the eigenbasis (conjugate with
    /// [`Op::BlockUnitary`]s holding `V†`/`V`), multiplies the amplitude at
    /// joint index `(m, k)` by `e^{i·sign·m·θ_k}`, where `m` is the value
    /// of the qubits above the block. One `O(2^n)` diagonal pass replaces
    /// `t` controlled dense-matrix applications.
    PhaseCascade {
        /// Number of qubits `s` in the (eigenbasis-rotated) system block.
        block_qubits: usize,
        /// Eigenphases `θ_k` of the unitary, length `2^s`.
        phases: Arc<Vec<f64>>,
        /// `+1.0` for the forward cascade, `-1.0` for the inverse
        /// (uncomputation).
        sign: f64,
    },
}

impl Op {
    /// Qubits this op touches. For [`Op::PhaseCascade`] this is the system
    /// block; the phase it applies also *reads* every qubit above the block
    /// (see [`Op::spans_register`]).
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Op::H(q) | Op::X(q) | Op::Y(q) | Op::Z(q) | Op::S(q) | Op::T(q) => vec![q],
            Op::Phase { target, .. }
            | Op::Rz { target, .. }
            | Op::Ry { target, .. }
            | Op::Gate1 { target, .. } => {
                vec![target]
            }
            Op::Cnot { control, target }
            | Op::CPhase {
                control, target, ..
            } => {
                vec![control, target]
            }
            Op::Swap(a, b) => vec![a, b],
            Op::BlockUnitary {
                control,
                ref matrix,
            } => {
                let s = matrix.nrows().trailing_zeros() as usize;
                let mut qs: Vec<usize> = (0..s).collect();
                if let Some(c) = control {
                    qs.push(c);
                }
                qs
            }
            Op::PhaseCascade { block_qubits, .. } => (0..block_qubits).collect(),
        }
    }

    /// `true` for ops whose action depends on the whole register (depth
    /// treats them as a barrier).
    pub fn spans_register(&self) -> bool {
        matches!(self, Op::PhaseCascade { .. })
    }

    /// `true` for two-qubit ops (the hardware-relevant count): the named
    /// two-qubit gates, plus block unitaries whose total footprint is two
    /// qubits.
    pub fn is_two_qubit(&self) -> bool {
        match self {
            Op::Cnot { .. } | Op::CPhase { .. } | Op::Swap(..) => true,
            Op::BlockUnitary { control, matrix } => {
                let s = matrix.nrows().trailing_zeros() as usize;
                s + usize::from(control.is_some()) == 2
            }
            _ => false,
        }
    }

    /// The `opaque`-gate mnemonic of a block op (`ublk{s}` / `cublk{s}` /
    /// `pcascade{s}`), `None` for standard-gate ops.
    fn opaque_name(&self) -> Option<String> {
        match self {
            Op::BlockUnitary { control, matrix } => {
                let s = matrix.nrows().trailing_zeros();
                Some(match control {
                    Some(_) => format!("cublk{s}"),
                    None => format!("ublk{s}"),
                })
            }
            Op::PhaseCascade { block_qubits, .. } => Some(format!("pcascade{block_qubits}")),
            _ => None,
        }
    }

    /// The OpenQASM gate line for this op on a register of `num_qubits`
    /// qubits — the single renderer behind [`Circuit::to_qasm`].
    /// Standard-gate ops render through their [`Display`](fmt::Display)
    /// form; the block ops (which `Display` can only abbreviate, lacking
    /// the register width) get their explicit qubit lists plus a payload
    /// comment here.
    pub fn qasm_line(&self, num_qubits: usize) -> String {
        let name = self.opaque_name();
        match self {
            Op::BlockUnitary { control, matrix } => {
                let s = matrix.nrows().trailing_zeros() as usize;
                let dim = matrix.nrows();
                let targets: Vec<String> = (0..s).map(|q| format!("q[{q}]")).collect();
                let tlist = targets.join(",");
                let name = name.expect("block op");
                match control {
                    Some(c) => {
                        format!("{name} q[{c}],{tlist}; // controlled {dim}×{dim} block unitary")
                    }
                    None => format!("{name} {tlist}; // {dim}×{dim} block unitary"),
                }
            }
            Op::PhaseCascade { phases, sign, .. } => {
                let args: Vec<String> = (0..num_qubits).map(|q| format!("q[{q}]")).collect();
                format!(
                    "{}({sign}) {}; // {} eigenphases",
                    name.expect("block op"),
                    args.join(","),
                    phases.len()
                )
            }
            _ => self.to_string(),
        }
    }

    /// Applies this op to a state — the single execution point every
    /// backend and [`Circuit::run`] route through.
    ///
    /// # Errors
    ///
    /// Propagates the underlying gate-kernel errors
    /// ([`SimError::QubitOutOfRange`], [`SimError::DimensionMismatch`],
    /// [`SimError::InvalidParameter`]).
    pub fn apply(&self, state: &mut QuantumState) -> Result<(), SimError> {
        match *self {
            Op::H(q) => state.apply_single(&gates::h(), q),
            Op::X(q) => state.apply_single(&gates::x(), q),
            Op::Y(q) => state.apply_single(&gates::y(), q),
            Op::Z(q) => state.apply_single(&gates::z(), q),
            Op::S(q) => state.apply_single(&gates::s(), q),
            Op::T(q) => state.apply_single(&gates::t(), q),
            Op::Phase { target, theta } => state.apply_single(&gates::phase(theta), target),
            Op::Rz { target, theta } => state.apply_single(&gates::rz(theta), target),
            Op::Ry { target, theta } => state.apply_single(&gates::ry(theta), target),
            Op::Cnot { control, target } => state.apply_cnot(control, target),
            Op::CPhase {
                control,
                target,
                theta,
            } => state.apply_controlled_phase(control, target, theta),
            Op::Swap(a, b) => state.apply_swap(a, b),
            Op::Gate1 { target, ref matrix } => state.apply_single(matrix, target),
            Op::BlockUnitary {
                control,
                ref matrix,
            } => match control {
                // The unconditional form routes large states through the
                // blocked-matmul fast path, exactly like the direct calls.
                None => state.apply_block_unitary(matrix),
                Some(c) => state.apply_controlled_block_unitary(matrix, Some(c)),
            },
            Op::PhaseCascade {
                block_qubits,
                ref phases,
                sign,
            } => {
                let block = 1usize << block_qubits;
                if phases.len() != block || !state.dim().is_multiple_of(block) {
                    return Err(SimError::DimensionMismatch {
                        context: format!(
                            "phase cascade: {} phases on a {}-qubit block of a state of dim {}",
                            phases.len(),
                            block_qubits,
                            state.dim()
                        ),
                    });
                }
                state.for_each_block_mut(block, |m, chunk| {
                    let factor = sign * m as f64;
                    for (a, &theta) in chunk.iter_mut().zip(phases.iter()) {
                        *a *= Complex64::cis(theta * factor);
                    }
                });
                Ok(())
            }
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::H(q) => write!(f, "h q[{q}];"),
            Op::X(q) => write!(f, "x q[{q}];"),
            Op::Y(q) => write!(f, "y q[{q}];"),
            Op::Z(q) => write!(f, "z q[{q}];"),
            Op::S(q) => write!(f, "s q[{q}];"),
            Op::T(q) => write!(f, "t q[{q}];"),
            Op::Phase { target, theta } => write!(f, "p({theta}) q[{target}];"),
            Op::Rz { target, theta } => write!(f, "rz({theta}) q[{target}];"),
            Op::Ry { target, theta } => write!(f, "ry({theta}) q[{target}];"),
            Op::Cnot { control, target } => write!(f, "cx q[{control}],q[{target}];"),
            Op::CPhase {
                control,
                target,
                theta,
            } => {
                write!(f, "cp({theta}) q[{control}],q[{target}];")
            }
            Op::Swap(a, b) => write!(f, "swap q[{a}],q[{b}];"),
            Op::Gate1 { target, ref matrix } => {
                // u3(θ, φ, λ) = Rz(φ)·Ry(θ)·Rz(λ) up to global phase: the
                // qelib1 generic single-qubit gate.
                match crate::synthesis::zyz_decompose(matrix) {
                    Ok((_, beta, gamma, delta)) => {
                        write!(f, "u3({gamma},{beta},{delta}) q[{target}];")
                    }
                    Err(_) => write!(f, "gate1(?) q[{target}]; // non-unitary matrix"),
                }
            }
            // The block ops share their mnemonic with the QASM renderer
            // ([`Op::qasm_line`]); `Display` lacks the register width, so
            // the phase cascade's qubit list is abbreviated here.
            Op::BlockUnitary {
                control,
                ref matrix,
            } => {
                let s = matrix.nrows().trailing_zeros() as usize;
                let name = self.opaque_name().expect("block op");
                let targets: Vec<String> = (0..s).map(|q| format!("q[{q}]")).collect();
                match control {
                    Some(c) => write!(f, "{name} q[{c}],{};", targets.join(",")),
                    None => write!(f, "{name} {};", targets.join(",")),
                }
            }
            Op::PhaseCascade {
                block_qubits, sign, ..
            } => {
                let name = self.opaque_name().expect("block op");
                write!(
                    f,
                    "{name}({sign}) q[0..{block_qubits}] // conditioned on q[{block_qubits}..]"
                )
            }
        }
    }
}

/// An ordered list of gates on a fixed-width register.
///
/// # Examples
///
/// ```
/// use qsc_sim::circuit::{Circuit, Op};
/// use qsc_sim::QuantumState;
///
/// # fn main() -> Result<(), qsc_sim::SimError> {
/// let mut bell = Circuit::new(2);
/// bell.push(Op::H(0))?;
/// bell.push(Op::Cnot { control: 0, target: 1 })?;
/// let mut state = QuantumState::zero_state(2);
/// bell.run(&mut state)?;
/// assert!((state.probability(0b11) - 0.5).abs() < 1e-12);
/// assert_eq!(bell.depth(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    ops: Vec<Op>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Self {
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// Appends a gate.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] if the op touches a qubit
    /// outside the register, [`SimError::InvalidParameter`] if a two-qubit
    /// op uses the same qubit twice, and [`SimError::DimensionMismatch`]
    /// for malformed block payloads (non-square / non-power-of-two block
    /// unitaries, phase tables of the wrong length).
    pub fn push(&mut self, op: Op) -> Result<(), SimError> {
        match &op {
            Op::BlockUnitary { control, matrix } => {
                if !matrix.is_square() || !matrix.nrows().is_power_of_two() {
                    return Err(SimError::DimensionMismatch {
                        context: format!(
                            "block unitary must be square with power-of-two dimension, got {}×{}",
                            matrix.nrows(),
                            matrix.ncols()
                        ),
                    });
                }
                let s = matrix.nrows().trailing_zeros() as usize;
                if s > self.num_qubits {
                    return Err(SimError::DimensionMismatch {
                        context: format!(
                            "{s}-qubit block unitary on a {}-qubit register",
                            self.num_qubits
                        ),
                    });
                }
                if let Some(c) = control {
                    if *c < s {
                        return Err(SimError::InvalidParameter {
                            context: format!("control {c} lies inside the {s}-qubit block"),
                        });
                    }
                }
            }
            Op::PhaseCascade {
                block_qubits,
                phases,
                ..
            } => {
                if *block_qubits > self.num_qubits {
                    return Err(SimError::DimensionMismatch {
                        context: format!(
                            "{block_qubits}-qubit phase cascade on a {}-qubit register",
                            self.num_qubits
                        ),
                    });
                }
                if phases.len() != 1usize << block_qubits {
                    return Err(SimError::DimensionMismatch {
                        context: format!(
                            "phase cascade on {block_qubits} qubits needs {} phases, got {}",
                            1usize << block_qubits,
                            phases.len()
                        ),
                    });
                }
            }
            _ => {}
        }
        let qs = op.qubits();
        for &q in &qs {
            if q >= self.num_qubits {
                return Err(SimError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
        }
        if qs.len() == 2 && qs[0] == qs[1] && !matches!(op, Op::BlockUnitary { .. }) {
            return Err(SimError::InvalidParameter {
                context: "two-qubit op with identical qubits".into(),
            });
        }
        self.ops.push(op);
        Ok(())
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The gate list.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Total gate count.
    pub fn gate_count(&self) -> usize {
        self.ops.len()
    }

    /// Two-qubit gate count (the hardware-relevant one).
    pub fn two_qubit_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_two_qubit()).count()
    }

    /// Circuit depth: the length of the longest qubit-disjoint layering
    /// (greedy ASAP scheduling). Ops that span the register
    /// ([`Op::spans_register`]) act as barriers.
    pub fn depth(&self) -> usize {
        let mut ready = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for op in &self.ops {
            let start = if op.spans_register() {
                ready.iter().copied().max().unwrap_or(0)
            } else {
                op.qubits().iter().map(|&q| ready[q]).max().unwrap_or(0)
            };
            let end = start + 1;
            if op.spans_register() {
                ready.fill(end);
            } else {
                for q in op.qubits() {
                    ready[q] = end;
                }
            }
            depth = depth.max(end);
        }
        depth
    }

    /// Executes the circuit on a state by applying every op in order.
    ///
    /// Backends layer buffer reuse, noise and sampling on top of this; the
    /// direct call is the noiseless reference execution.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if the state width differs
    /// from the circuit's, and propagates gate errors.
    pub fn run(&self, state: &mut QuantumState) -> Result<(), SimError> {
        if state.num_qubits() != self.num_qubits {
            return Err(SimError::DimensionMismatch {
                context: format!(
                    "circuit on {} qubits, state on {}",
                    self.num_qubits,
                    state.num_qubits()
                ),
            });
        }
        for op in &self.ops {
            op.apply(state)?;
        }
        Ok(())
    }

    /// Appends the textbook QFT gate sequence on `range` (H + controlled
    /// phases from the MSB down, then bit-reversal swaps) — the same op
    /// order as `qsc_sim::qft::apply_qft`, so compiled execution is
    /// bit-identical to the direct path.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for an empty range and
    /// [`SimError::QubitOutOfRange`] if the range exceeds the register.
    pub fn push_qft(&mut self, range: Range<usize>) -> Result<(), SimError> {
        let (lo, m) = self.check_qft_range(&range)?;
        for i in (0..m).rev() {
            self.push(Op::H(lo + i))?;
            for j in (0..i).rev() {
                let theta = std::f64::consts::PI / (1 << (i - j)) as f64;
                self.push(Op::CPhase {
                    control: lo + j,
                    target: lo + i,
                    theta,
                })?;
            }
        }
        for i in 0..m / 2 {
            self.push(Op::Swap(lo + i, lo + m - 1 - i))?;
        }
        Ok(())
    }

    /// Appends the inverse QFT on `range` (the exact reversal of
    /// [`Circuit::push_qft`], matching `qsc_sim::qft::apply_inverse_qft`).
    ///
    /// # Errors
    ///
    /// Same contract as [`Circuit::push_qft`].
    pub fn push_inverse_qft(&mut self, range: Range<usize>) -> Result<(), SimError> {
        let (lo, m) = self.check_qft_range(&range)?;
        for i in 0..m / 2 {
            self.push(Op::Swap(lo + i, lo + m - 1 - i))?;
        }
        for i in 0..m {
            for j in 0..i {
                let theta = -std::f64::consts::PI / (1 << (i - j)) as f64;
                self.push(Op::CPhase {
                    control: lo + j,
                    target: lo + i,
                    theta,
                })?;
            }
            self.push(Op::H(lo + i))?;
        }
        Ok(())
    }

    fn check_qft_range(&self, range: &Range<usize>) -> Result<(usize, usize), SimError> {
        let m = range.len();
        if m == 0 {
            return Err(SimError::InvalidParameter {
                context: "empty QFT range".into(),
            });
        }
        if range.end > self.num_qubits {
            return Err(SimError::QubitOutOfRange {
                qubit: range.end - 1,
                num_qubits: self.num_qubits,
            });
        }
        Ok((range.start, m))
    }

    /// Builds the textbook QFT circuit on the whole register, matching
    /// `qsc_sim::qft::apply_qft`.
    pub fn qft(num_qubits: usize) -> Self {
        let mut c = Self::new(num_qubits);
        c.push_qft(0..num_qubits).expect("in range");
        c
    }

    /// Dumps an OpenQASM-2-flavoured listing.
    ///
    /// Every [`Op`] variant is covered — nothing is silently dropped. The
    /// compiled block operators ([`Op::BlockUnitary`],
    /// [`Op::PhaseCascade`]) have no standard-gate expansion, so they are
    /// exported as `opaque` gate declarations (one per shape) applied to
    /// their explicit qubit lists, with the payload summarized in a
    /// trailing comment; fused [`Op::Gate1`]s are exported as the generic
    /// `u3` rotation.
    pub fn to_qasm(&self) -> String {
        use std::collections::BTreeSet;
        let mut out = String::new();
        out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");

        // Declare one opaque gate per distinct block-operator shape; the
        // mnemonics and gate lines come from the single [`Op::qasm_line`]
        // renderer.
        let mut declared: BTreeSet<String> = BTreeSet::new();
        for op in &self.ops {
            if let Some(name) = op.opaque_name() {
                if declared.insert(name.clone()) {
                    match op {
                        Op::BlockUnitary { control, matrix } => {
                            let s = matrix.nrows().trailing_zeros() as usize;
                            let mut args: Vec<String> = Vec::new();
                            if control.is_some() {
                                args.push("c".into());
                            }
                            args.extend((0..s).map(|q| format!("t{q}")));
                            out.push_str(&format!("opaque {name} {};\n", args.join(",")));
                        }
                        _ => {
                            let args: Vec<String> =
                                (0..self.num_qubits).map(|q| format!("t{q}")).collect();
                            out.push_str(&format!("opaque {name}(sign) {};\n", args.join(",")));
                        }
                    }
                }
            }
        }

        out.push_str(&format!("qreg q[{}];\n", self.num_qubits));
        for op in &self.ops {
            out.push_str(&op.qasm_line(self.num_qubits));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qft::{apply_inverse_qft, apply_qft};
    use qsc_linalg::{C_ONE, C_ZERO};

    #[test]
    fn bell_circuit_runs() {
        let mut c = Circuit::new(2);
        c.push(Op::H(0)).unwrap();
        c.push(Op::Cnot {
            control: 0,
            target: 1,
        })
        .unwrap();
        let mut s = QuantumState::zero_state(2);
        c.run(&mut s).unwrap();
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn qft_circuit_matches_direct_qft() {
        for m in 1..=4usize {
            let c = Circuit::qft(m);
            for j in 0..(1 << m) {
                let mut via_circuit = QuantumState::basis_state(m, j);
                c.run(&mut via_circuit).unwrap();
                let mut direct = QuantumState::basis_state(m, j);
                apply_qft(&mut direct, 0..m).unwrap();
                assert!(via_circuit.fidelity(&direct) > 1.0 - 1e-10, "m={m} j={j}");
            }
        }
    }

    #[test]
    fn inverse_qft_ops_match_direct_inverse_qft() {
        // Compiled inverse QFT on a sub-range is bit-identical to the
        // state-level routine (same gate sequence).
        let mut c = Circuit::new(4);
        c.push_inverse_qft(1..4).unwrap();
        for j in 0..16 {
            let mut via_circuit = QuantumState::basis_state(4, j);
            c.run(&mut via_circuit).unwrap();
            let mut direct = QuantumState::basis_state(4, j);
            apply_inverse_qft(&mut direct, 1..4).unwrap();
            assert_eq!(via_circuit.amplitudes(), direct.amplitudes(), "j={j}");
        }
    }

    #[test]
    fn depth_of_parallel_gates() {
        let mut c = Circuit::new(3);
        c.push(Op::H(0)).unwrap();
        c.push(Op::H(1)).unwrap();
        c.push(Op::H(2)).unwrap();
        assert_eq!(c.depth(), 1);
        c.push(Op::Cnot {
            control: 0,
            target: 1,
        })
        .unwrap();
        assert_eq!(c.depth(), 2);
        c.push(Op::H(2)).unwrap(); // fits in layer 2
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn phase_cascade_is_a_depth_barrier() {
        let mut c = Circuit::new(3);
        c.push(Op::H(2)).unwrap();
        c.push(Op::PhaseCascade {
            block_qubits: 1,
            phases: Arc::new(vec![0.0, 1.0]),
            sign: 1.0,
        })
        .unwrap();
        c.push(Op::H(2)).unwrap(); // must NOT share a layer across the cascade
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn counts() {
        let c = Circuit::qft(4);
        assert_eq!(c.gate_count(), 4 + 6 + 2); // H's, cphases, swaps
        assert_eq!(c.two_qubit_count(), 8);
    }

    #[test]
    fn rejects_bad_ops() {
        let mut c = Circuit::new(2);
        assert!(c.push(Op::H(5)).is_err());
        assert!(c
            .push(Op::Cnot {
                control: 1,
                target: 1
            })
            .is_err());
        // Block unitary wider than the register.
        assert!(c
            .push(Op::BlockUnitary {
                control: None,
                matrix: Arc::new(CMatrix::identity(8)),
            })
            .is_err());
        // Control inside the block.
        assert!(c
            .push(Op::BlockUnitary {
                control: Some(0),
                matrix: Arc::new(CMatrix::identity(2)),
            })
            .is_err());
        // Wrong phase-table length.
        assert!(c
            .push(Op::PhaseCascade {
                block_qubits: 1,
                phases: Arc::new(vec![0.0; 3]),
                sign: 1.0,
            })
            .is_err());
    }

    #[test]
    fn run_checks_width() {
        let c = Circuit::new(2);
        let mut s = QuantumState::zero_state(3);
        assert!(c.run(&mut s).is_err());
    }

    #[test]
    fn block_unitary_op_matches_state_call() {
        let xm = CMatrix::from_rows(&[vec![C_ZERO, C_ONE], vec![C_ONE, C_ZERO]]).unwrap();
        let mut c = Circuit::new(2);
        c.push(Op::BlockUnitary {
            control: Some(1),
            matrix: Arc::new(xm.clone()),
        })
        .unwrap();
        let mut via_circuit = QuantumState::basis_state(2, 0b10);
        c.run(&mut via_circuit).unwrap();
        let mut direct = QuantumState::basis_state(2, 0b10);
        direct.apply_controlled_block_unitary(&xm, Some(1)).unwrap();
        assert_eq!(via_circuit.amplitudes(), direct.amplitudes());
        assert_eq!(via_circuit.probability(0b11), 1.0);
    }

    #[test]
    fn gate1_op_applies_matrix() {
        let mut c = Circuit::new(1);
        c.push(Op::Gate1 {
            target: 0,
            matrix: gates::h(),
        })
        .unwrap();
        let mut s = QuantumState::zero_state(1);
        c.run(&mut s).unwrap();
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn qasm_dump_contains_header_and_gates() {
        let mut c = Circuit::new(1);
        c.push(Op::H(0)).unwrap();
        c.push(Op::T(0)).unwrap();
        let qasm = c.to_qasm();
        assert!(qasm.starts_with("OPENQASM 2.0;"));
        assert!(qasm.contains("qreg q[1];"));
        assert!(qasm.contains("h q[0];"));
        assert!(qasm.contains("t q[0];"));
    }

    #[test]
    fn qasm_covers_every_op_variant() {
        // One op of every variant; the dump must emit exactly one gate line
        // per op (plus the opaque declarations), dropping nothing.
        let mut c = Circuit::new(3);
        let ops = vec![
            Op::H(0),
            Op::X(0),
            Op::Y(1),
            Op::Z(2),
            Op::S(0),
            Op::T(1),
            Op::Phase {
                target: 0,
                theta: 0.25,
            },
            Op::Rz {
                target: 1,
                theta: 0.5,
            },
            Op::Ry {
                target: 2,
                theta: 0.75,
            },
            Op::Cnot {
                control: 0,
                target: 1,
            },
            Op::CPhase {
                control: 1,
                target: 2,
                theta: 0.1,
            },
            Op::Swap(0, 2),
            Op::Gate1 {
                target: 1,
                matrix: gates::ry(0.3),
            },
            Op::BlockUnitary {
                control: None,
                matrix: Arc::new(CMatrix::identity(2)),
            },
            Op::BlockUnitary {
                control: Some(2),
                matrix: Arc::new(CMatrix::identity(2)),
            },
            Op::PhaseCascade {
                block_qubits: 1,
                phases: Arc::new(vec![0.0, 0.5]),
                sign: -1.0,
            },
        ];
        for op in ops {
            c.push(op).unwrap();
        }
        let qasm = c.to_qasm();
        // Structure: header (2 lines) + opaque decls + qreg + one line/op.
        let lines: Vec<&str> = qasm.lines().collect();
        let qreg = lines
            .iter()
            .position(|l| l.starts_with("qreg"))
            .expect("qreg line");
        let gate_lines = lines.len() - qreg - 1;
        assert_eq!(gate_lines, c.gate_count(), "one line per op:\n{qasm}");
        // The opaque block operators are declared before use.
        assert!(qasm.contains("opaque ublk1"));
        assert!(qasm.contains("opaque cublk1"));
        assert!(qasm.contains("opaque pcascade1"));
        assert!(qasm.contains("u3("));
        assert!(qasm.contains("pcascade1(-1)"));
    }

    #[test]
    fn display_of_parametric_ops() {
        let op = Op::CPhase {
            control: 0,
            target: 1,
            theta: 0.5,
        };
        assert_eq!(op.to_string(), "cp(0.5) q[0],q[1];");
    }
}
