//! # qsc-sim — quantum state-vector simulator
//!
//! The quantum substrate of the *Quantum Spectral Clustering of Mixed
//! Graphs* reproduction. No external quantum crates are used; everything is
//! simulated exactly on the state vector, with the physically meaningful
//! noise (phase-register resolution, finite shots, estimation error, gate
//! and readout errors) surfaced explicitly.
//!
//! The execution model is **compile, then execute**: algorithms build
//! [`circuit::Circuit`] IR (phase cascades, QFT blocks and
//! controlled-unitary blocks as [`circuit::Op`]s), optionally rewrite it
//! with the [`compile`] passes (gate fusion), and run it on a pluggable
//! [`backend::Backend`]:
//!
//! * [`Statevector`] — exact, noiseless execution on the cache-blocked
//!   kernels (the default; bit-identical to direct op application),
//! * [`ShardedStatevector`] — the same exact execution sharded over the
//!   worker pool by high-qubit blocks (bit-identical amplitudes),
//! * [`NoisyStatevector`] — seeded Monte-Carlo depolarizing +
//!   readout-error channels (trajectory noise),
//! * [`DensityMatrix`] — the exact-channel counterpart: evolves `ρ` and
//!   applies the same channels via Kraus operators, no trajectory
//!   variance,
//! * [`ShotSampler`] — finite-shot measurement statistics replacing exact
//!   probability reads.
//!
//! Module map:
//!
//! * [`backend`] — the [`Backend`] trait, the statevector-family backends,
//!   and the reusable state [`BufferPool`],
//! * [`budget`] — pre-allocation memory estimates returning typed
//!   `BudgetExceeded` errors instead of aborting,
//! * [`density`] / [`shard`] — the density-matrix and sharded-statevector
//!   backends,
//! * [`circuit`] / [`compile`] — the circuit IR and its compile passes,
//! * [`QuantumState`] — dense state vectors with gates and measurement,
//! * [`gates`] — standard gate matrices,
//! * [`qft`] — gate-level quantum Fourier transform,
//! * [`qpe`] — phase estimation (a circuit compiler, gate-level execution
//!   and the exact analytic outcome distribution, cross-validated),
//! * [`remote`] — the strict-JSON wire codec and [`RemoteBackend`], which
//!   executes any of the above on a remote executor service bit-identically,
//! * [`tomography`] — finite-shot vector readout,
//! * [`amplitude`] — amplitude estimation / amplification models,
//! * [`resources`] — qubit/gate/depth forecasting.
//!
//! # Examples
//!
//! Estimating an eigenphase with gate-level QPE:
//!
//! ```
//! use qsc_sim::{qpe::qpe_gate_level, QuantumState};
//! use qsc_linalg::{CMatrix, Complex64};
//! use std::f64::consts::TAU;
//!
//! # fn main() -> Result<(), qsc_sim::SimError> {
//! // U = diag(1, e^{2πi·5/8}); its |1⟩ eigenstate has phase 5/8.
//! let u = CMatrix::from_diag(&[Complex64::real(1.0), Complex64::cis(TAU * 5.0 / 8.0)]);
//! let out = qpe_gate_level(&u, &QuantumState::basis_state(1, 1), 3)?;
//! let probs = out.marginal_high(3);
//! assert!((probs[5] - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```
//!
//! Compiling a circuit and running it on a noise-model backend:
//!
//! ```
//! use qsc_sim::backend::{Backend, NoisyStatevector};
//! use qsc_sim::circuit::{Circuit, Op};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), qsc_sim::SimError> {
//! let mut c = Circuit::new(2);
//! c.push(Op::H(0))?;
//! c.push(Op::Cnot { control: 0, target: 1 })?;
//! let backend = NoisyStatevector::new(0.01, 0.02); // gate + readout error
//! let mut rng = StdRng::seed_from_u64(1);
//! let state = backend.execute(&c, 0, &mut rng)?;
//! let counts = backend.sample(&state, 1000, &mut rng)?;
//! assert_eq!(counts.iter().map(|(_, n)| n).sum::<usize>(), 1000);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod amplitude;
pub mod backend;
pub mod budget;
pub mod circuit;
pub mod compile;
pub mod density;
pub mod error;
pub mod gates;
pub mod qft;
pub mod qpe;
pub mod remote;
pub mod resources;
pub mod shard;
pub mod state;
pub mod synthesis;
pub mod tomography;

pub use backend::{Backend, BufferPool, NoisyStatevector, ShotSampler, Statevector};
pub use circuit::{Circuit, Op};
pub use density::DensityMatrix;
pub use error::SimError;
pub use qpe::PhaseEstimator;
pub use remote::RemoteBackend;
pub use resources::ResourceEstimate;
pub use shard::ShardedStatevector;
pub use state::QuantumState;
