//! # qsc-sim — quantum state-vector simulator
//!
//! The quantum substrate of the *Quantum Spectral Clustering of Mixed
//! Graphs* reproduction. No external quantum crates are used; everything is
//! simulated exactly on the state vector, with the physically meaningful
//! noise (phase-register resolution, finite shots, estimation error)
//! surfaced explicitly:
//!
//! * [`QuantumState`] — dense state vectors with gates and measurement,
//! * [`gates`] — standard gate matrices,
//! * [`qft`] — gate-level quantum Fourier transform,
//! * [`qpe`] — phase estimation (gate-level circuit and the exact analytic
//!   outcome distribution, cross-validated),
//! * [`tomography`] — finite-shot vector readout,
//! * [`amplitude`] — amplitude estimation / amplification models,
//! * [`resources`] — qubit/gate/depth forecasting.
//!
//! # Examples
//!
//! Estimating an eigenphase with gate-level QPE:
//!
//! ```
//! use qsc_sim::{qpe::qpe_gate_level, QuantumState};
//! use qsc_linalg::{CMatrix, Complex64};
//! use std::f64::consts::TAU;
//!
//! # fn main() -> Result<(), qsc_sim::SimError> {
//! // U = diag(1, e^{2πi·5/8}); its |1⟩ eigenstate has phase 5/8.
//! let u = CMatrix::from_diag(&[Complex64::real(1.0), Complex64::cis(TAU * 5.0 / 8.0)]);
//! let out = qpe_gate_level(&u, &QuantumState::basis_state(1, 1), 3)?;
//! let probs = out.marginal_high(3);
//! assert!((probs[5] - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod amplitude;
pub mod circuit;
pub mod error;
pub mod gates;
pub mod qft;
pub mod qpe;
pub mod resources;
pub mod state;
pub mod synthesis;
pub mod tomography;

pub use error::SimError;
pub use qpe::PhaseEstimator;
pub use resources::ResourceEstimate;
pub use state::QuantumState;
