//! Compile passes over the circuit IR, applied between compilation and
//! backend execution.
//!
//! The only pass so far is [`fuse_single_qubit`]: adjacent single-qubit
//! gates on the same qubit are folded into one [`Op::Gate1`] by 2×2 matrix
//! multiplication, so a run of `t` rotations costs one state-vector sweep
//! instead of `t`. Backends apply it when constructed with fusion enabled
//! (e.g. [`Statevector::fused`](crate::backend::Statevector::fused)).

use crate::circuit::{Circuit, Mat2, Op};
use crate::gates;

/// The 2×2 matrix of a single-qubit op, with its target, when the op is a
/// pure single-qubit gate (fusion candidate).
pub fn single_qubit_matrix(op: &Op) -> Option<(usize, Mat2)> {
    match *op {
        Op::H(q) => Some((q, gates::h())),
        Op::X(q) => Some((q, gates::x())),
        Op::Y(q) => Some((q, gates::y())),
        Op::Z(q) => Some((q, gates::z())),
        Op::S(q) => Some((q, gates::s())),
        Op::T(q) => Some((q, gates::t())),
        Op::Phase { target, theta } => Some((target, gates::phase(theta))),
        Op::Rz { target, theta } => Some((target, gates::rz(theta))),
        Op::Ry { target, theta } => Some((target, gates::ry(theta))),
        Op::Gate1 { target, matrix } => Some((target, matrix)),
        _ => None,
    }
}

/// Product `a·b` of two 2×2 gate matrices (apply `b` first, then `a`).
pub fn mul2(a: &Mat2, b: &Mat2) -> Mat2 {
    let mut out = [[qsc_linalg::C_ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    out
}

/// A single-qubit run being accumulated on one qubit: the fused matrix, the
/// first original op (re-emitted verbatim when nothing actually fused), and
/// the number of ops folded in.
struct PendingRun {
    matrix: Mat2,
    first: Op,
    count: usize,
}

fn flush(pending: &mut [Option<PendingRun>], q: usize, out: &mut Circuit) {
    if let Some(run) = pending[q].take() {
        let op = if run.count == 1 {
            // No fusion happened: keep the original op (bit-identical
            // execution, readable export).
            run.first
        } else {
            Op::Gate1 {
                target: q,
                matrix: run.matrix,
            }
        };
        out.push(op).expect("op was valid in the source circuit");
    }
}

/// Folds every maximal run of adjacent single-qubit gates on the same qubit
/// into one [`Op::Gate1`].
///
/// Single-qubit gates on *different* qubits commute, so a run is only
/// interrupted by a multi-qubit or block op touching its qubit (ops that
/// span the register, like [`Op::PhaseCascade`], interrupt every run).
/// Runs of length one are re-emitted verbatim, so a circuit with nothing to
/// fuse round-trips unchanged. The fused circuit computes the same unitary;
/// amplitudes agree to rounding (≈1e-15 per fused pair), which is why the
/// bit-exact [`Statevector`](crate::backend::Statevector) backend leaves
/// fusion off by default.
pub fn fuse_single_qubit(circuit: &Circuit) -> Circuit {
    let n = circuit.num_qubits();
    let mut out = Circuit::new(n);
    let mut pending: Vec<Option<PendingRun>> = (0..n).map(|_| None).collect();
    for op in circuit.ops() {
        if let Some((q, m)) = single_qubit_matrix(op) {
            pending[q] = Some(match pending[q].take() {
                None => PendingRun {
                    matrix: m,
                    first: op.clone(),
                    count: 1,
                },
                Some(run) => PendingRun {
                    matrix: mul2(&m, &run.matrix),
                    first: run.first,
                    count: run.count + 1,
                },
            });
        } else {
            if op.spans_register() {
                for q in 0..n {
                    flush(&mut pending, q, &mut out);
                }
            } else {
                for q in op.qubits() {
                    flush(&mut pending, q, &mut out);
                }
            }
            out.push(op.clone())
                .expect("op was valid in the source circuit");
        }
    }
    for q in 0..n {
        flush(&mut pending, q, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::QuantumState;
    use qsc_linalg::Complex64;

    fn max_amp_diff(a: &QuantumState, b: &QuantumState) -> f64 {
        a.amplitudes()
            .iter()
            .zip(b.amplitudes())
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn fuses_adjacent_gates_into_one() {
        let mut c = Circuit::new(1);
        c.push(Op::H(0)).unwrap();
        c.push(Op::T(0)).unwrap();
        c.push(Op::H(0)).unwrap();
        let fused = fuse_single_qubit(&c);
        assert_eq!(fused.gate_count(), 1);
        assert!(matches!(fused.ops()[0], Op::Gate1 { target: 0, .. }));
    }

    #[test]
    fn single_gates_pass_through_verbatim() {
        let mut c = Circuit::new(2);
        c.push(Op::H(0)).unwrap();
        c.push(Op::Cnot {
            control: 0,
            target: 1,
        })
        .unwrap();
        c.push(Op::T(1)).unwrap();
        let fused = fuse_single_qubit(&c);
        assert_eq!(fused.ops(), c.ops());
    }

    #[test]
    fn two_qubit_ops_interrupt_runs_only_on_their_qubits() {
        let mut c = Circuit::new(2);
        c.push(Op::T(0)).unwrap(); // starts a run on 0
        c.push(Op::H(1)).unwrap(); // starts a run on 1
        c.push(Op::Phase {
            target: 1,
            theta: 0.3,
        })
        .unwrap(); // continues the run on 1
        c.push(Op::Cnot {
            control: 0,
            target: 1,
        })
        .unwrap(); // flushes both
        let fused = fuse_single_qubit(&c);
        // T(0) stays verbatim (run of one); H·P fuse on qubit 1.
        assert_eq!(fused.gate_count(), 3);
        assert!(fused
            .ops()
            .iter()
            .any(|o| matches!(o, Op::Gate1 { target: 1, .. })));
        assert!(fused.ops().iter().any(|o| matches!(o, Op::T(0))));
    }

    #[test]
    fn fusion_preserves_amplitudes() {
        // A long mixed circuit: fused and unfused executions agree to
        // rounding on every amplitude.
        let mut c = Circuit::new(3);
        let gates: Vec<Op> = vec![
            Op::H(0),
            Op::T(0),
            Op::Ry {
                target: 0,
                theta: 0.7,
            },
            Op::H(1),
            Op::S(1),
            Op::Cnot {
                control: 0,
                target: 1,
            },
            Op::Rz {
                target: 1,
                theta: -0.4,
            },
            Op::Phase {
                target: 2,
                theta: 1.1,
            },
            Op::H(2),
            Op::CPhase {
                control: 1,
                target: 2,
                theta: 0.9,
            },
            Op::Z(2),
            Op::X(0),
            Op::Y(0),
        ];
        for op in gates {
            c.push(op).unwrap();
        }
        let fused = fuse_single_qubit(&c);
        assert!(fused.gate_count() < c.gate_count());
        for basis in 0..8 {
            let mut a = QuantumState::basis_state(3, basis);
            let mut b = QuantumState::basis_state(3, basis);
            c.run(&mut a).unwrap();
            fused.run(&mut b).unwrap();
            assert!(max_amp_diff(&a, &b) < 1e-12, "basis {basis}");
        }
    }

    #[test]
    fn mul2_matches_matrix_product() {
        let a = crate::gates::h();
        let b = crate::gates::t();
        let ab = mul2(&a, &b);
        // (H·T)|0⟩ = H (T|0⟩) = H|0⟩.
        let mut expect = [[qsc_linalg::C_ZERO; 2]; 2];
        for (i, row) in expect.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                let mut acc = Complex64::new(0.0, 0.0);
                for (k, bk) in b.iter().enumerate() {
                    acc += a[i][k] * bk[j];
                }
                *cell = acc;
            }
        }
        assert_eq!(ab, expect);
    }
}
