//! Quantum Fourier transform, gate-level, on a contiguous qubit range,
//! cross-validated against the DFT matrix.

use crate::error::SimError;
use crate::state::QuantumState;
use qsc_linalg::{CMatrix, Complex64};
use std::f64::consts::{PI, TAU};

/// Applies the QFT to qubits `range.start..range.end` of the state:
/// on that register, `|j⟩ → (1/√N)·Σ_k e^{+2πi·jk/N}·|k⟩` with
/// `N = 2^(range length)`.
///
/// # Errors
///
/// Returns [`SimError::QubitOutOfRange`] if the range exceeds the register
/// and [`SimError::InvalidParameter`] for an empty range.
pub fn apply_qft(state: &mut QuantumState, range: std::ops::Range<usize>) -> Result<(), SimError> {
    qft_impl(state, range, false)
}

/// Applies the inverse QFT (the adjoint of [`apply_qft`]).
///
/// # Errors
///
/// Same contract as [`apply_qft`].
pub fn apply_inverse_qft(
    state: &mut QuantumState,
    range: std::ops::Range<usize>,
) -> Result<(), SimError> {
    qft_impl(state, range, true)
}

fn qft_impl(
    state: &mut QuantumState,
    range: std::ops::Range<usize>,
    inverse: bool,
) -> Result<(), SimError> {
    let m = range.len();
    if m == 0 {
        return Err(SimError::InvalidParameter {
            context: "empty QFT range".into(),
        });
    }
    if range.end > state.num_qubits() {
        return Err(SimError::QubitOutOfRange {
            qubit: range.end - 1,
            num_qubits: state.num_qubits(),
        });
    }
    let lo = range.start;
    let sign = if inverse { -1.0 } else { 1.0 };

    if !inverse {
        // Forward: H + controlled phases from MSB down, then bit reversal.
        for i in (0..m).rev() {
            state.apply_h(lo + i)?;
            for j in (0..i).rev() {
                let theta = sign * PI / (1 << (i - j)) as f64;
                state.apply_controlled_phase(lo + j, lo + i, theta)?;
            }
        }
        for i in 0..m / 2 {
            state.apply_swap(lo + i, lo + m - 1 - i)?;
        }
    } else {
        // Inverse: exact reversal of the forward sequence.
        for i in 0..m / 2 {
            state.apply_swap(lo + i, lo + m - 1 - i)?;
        }
        for i in 0..m {
            for j in 0..i {
                let theta = sign * PI / (1 << (i - j)) as f64;
                state.apply_controlled_phase(lo + j, lo + i, theta)?;
            }
            state.apply_h(lo + i)?;
        }
    }
    Ok(())
}

/// The DFT matrix `F_{kj} = e^{+2πi·jk/N}/√N` used as the reference for the
/// gate-level QFT in tests.
pub fn dft_matrix(n: usize) -> CMatrix {
    let nf = n as f64;
    let norm = 1.0 / nf.sqrt();
    CMatrix::from_fn(n, n, |k, j| {
        Complex64::cis(TAU * (j as f64) * (k as f64) / nf).scale(norm)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsc_linalg::C_ZERO;

    fn state_as_vec(s: &QuantumState) -> Vec<Complex64> {
        s.amplitudes().to_vec()
    }

    #[test]
    fn qft_matches_dft_matrix_on_basis_states() {
        for m in 1..=4usize {
            let n = 1 << m;
            let f = dft_matrix(n);
            for j in 0..n {
                let mut s = QuantumState::basis_state(m, j);
                apply_qft(&mut s, 0..m).unwrap();
                let got = state_as_vec(&s);
                for k in 0..n {
                    let expected = f[(k, j)];
                    assert!(
                        (got[k] - expected).abs() < 1e-10,
                        "m={m} j={j} k={k}: got {} expected {}",
                        got[k],
                        expected
                    );
                }
            }
        }
    }

    #[test]
    fn inverse_undoes_forward() {
        let mut s = QuantumState::from_amplitudes(
            (0..8)
                .map(|i| Complex64::new(1.0 + i as f64, (i as f64) * 0.3 - 1.0))
                .collect(),
        )
        .unwrap();
        let original = state_as_vec(&s);
        apply_qft(&mut s, 0..3).unwrap();
        apply_inverse_qft(&mut s, 0..3).unwrap();
        let back = state_as_vec(&s);
        for (a, b) in back.iter().zip(&original) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn qft_on_subrange_leaves_other_qubits() {
        // QFT on qubits 0..2 of a 3-qubit register; qubit 2 stays |1⟩.
        let mut s = QuantumState::basis_state(3, 0b100);
        apply_qft(&mut s, 0..2).unwrap();
        let probs = s.marginal_high(1);
        assert!((probs[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn qft_of_zero_is_uniform() {
        let mut s = QuantumState::zero_state(3);
        apply_qft(&mut s, 0..3).unwrap();
        for i in 0..8 {
            assert!((s.probability(i) - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn dft_matrix_unitary() {
        for n in [2usize, 4, 8] {
            assert!(dft_matrix(n).is_unitary(1e-10));
        }
    }

    #[test]
    fn rejects_empty_and_out_of_range() {
        let mut s = QuantumState::zero_state(2);
        assert!(apply_qft(&mut s, 1..1).is_err());
        assert!(apply_qft(&mut s, 0..5).is_err());
        let _ = C_ZERO;
    }
}
