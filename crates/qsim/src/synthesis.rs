//! Unitary synthesis primitives: exact two-level (Givens) decomposition of
//! arbitrary unitaries and ZYZ factorization of single-qubit gates.
//!
//! The resource estimates in [`crate::resources`] use a *modeled* cost per
//! controlled-unitary; this module provides the constructive counterpart
//! for small systems: any `d × d` unitary factors exactly into at most
//! `d(d−1)/2` two-level rotations (each implementable as a Gray-code chain
//! of CNOTs around one multi-controlled single-qubit gate), and every
//! single-qubit unitary factors as `e^{iα}·Rz(β)·Ry(γ)·Rz(δ)`. The derived
//! counts calibrate the model.

use crate::error::SimError;
use qsc_linalg::{CMatrix, Complex64, C_ONE, C_ZERO};

/// A two-level unitary: acts as the 2×2 block `[[a, b], [c, d]]` on basis
/// states `i < j` and as identity elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoLevel {
    /// Lower basis-state index.
    pub i: usize,
    /// Higher basis-state index.
    pub j: usize,
    /// The 2×2 block, row-major: `[[a, b], [c, d]]`.
    pub block: [[Complex64; 2]; 2],
}

impl TwoLevel {
    /// Expands to a full `dim × dim` matrix.
    pub fn to_matrix(&self, dim: usize) -> CMatrix {
        let mut m = CMatrix::identity(dim);
        m[(self.i, self.i)] = self.block[0][0];
        m[(self.i, self.j)] = self.block[0][1];
        m[(self.j, self.i)] = self.block[1][0];
        m[(self.j, self.j)] = self.block[1][1];
        m
    }

    /// Hamming distance between the two basis states — the Gray-code chain
    /// length driver for the circuit implementation.
    pub fn hamming_distance(&self) -> u32 {
        (self.i ^ self.j).count_ones()
    }
}

/// Decomposes a unitary into two-level factors such that
/// `U = G_1 · G_2 ⋯ G_m` (in the returned order), `m ≤ d(d−1)/2` plus a
/// final diagonal phase absorbed into the last factors.
///
/// The construction zeroes the sub-diagonal column by column with Givens
/// rotations (the standard Reck/NC §4.5 scheme).
///
/// # Errors
///
/// Returns [`SimError::NotUnitary`] if `u` fails a unitarity check and
/// [`SimError::DimensionMismatch`] for non-square input.
///
/// # Examples
///
/// ```
/// use qsc_sim::synthesis::{two_level_decompose, reconstruct};
/// use qsc_linalg::CMatrix;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), qsc_sim::SimError> {
/// let mut rng = StdRng::seed_from_u64(5);
/// let u = CMatrix::random_unitary(4, &mut rng);
/// let factors = two_level_decompose(&u)?;
/// assert!((&reconstruct(&factors, 4) - &u).max_norm() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn two_level_decompose(u: &CMatrix) -> Result<Vec<TwoLevel>, SimError> {
    if !u.is_square() {
        return Err(SimError::DimensionMismatch {
            context: format!("two_level_decompose: {}×{}", u.nrows(), u.ncols()),
        });
    }
    if !u.is_unitary(1e-8) {
        let dev = (&u.adjoint().matmul(u) - &CMatrix::identity(u.nrows())).max_norm();
        return Err(SimError::NotUnitary { deviation: dev });
    }
    let d = u.nrows();
    let mut work = u.clone();
    // Left-multiplied eliminators E so that E_m ⋯ E_1 · U = D (diagonal).
    let mut eliminators: Vec<TwoLevel> = Vec::new();

    for col in 0..d.saturating_sub(1) {
        for row in (col + 1..d).rev() {
            let b = work[(row, col)];
            if b.abs() < 1e-14 {
                continue;
            }
            let a = work[(col, col)];
            let norm = (a.norm_sqr() + b.norm_sqr()).sqrt();
            // Givens block G with G · [a; b] = [norm; 0] on rows (col, row).
            let g00 = a.conj() / norm;
            let g01 = b.conj() / norm;
            let g10 = b / norm;
            let g11 = -a / norm;
            let elim = TwoLevel {
                i: col,
                j: row,
                block: [[g00, g01], [g10, g11]],
            };
            apply_two_level_left(&mut work, &elim);
            eliminators.push(elim);
        }
    }

    // work is now diagonal with unit-modulus entries:
    // E_m ⋯ E_1 · U = D  ⇒  U = E_1† · E_2† ⋯ E_m† · D,
    // so the factor list is the eliminator adjoints in *original* order,
    // followed by two-level phase factors for D.
    let mut factors: Vec<TwoLevel> = eliminators
        .iter()
        .map(|e| TwoLevel {
            i: e.i,
            j: e.j,
            block: [
                [e.block[0][0].conj(), e.block[1][0].conj()],
                [e.block[0][1].conj(), e.block[1][1].conj()],
            ],
        })
        .collect();

    // Diagonal phases: fold each non-trivial pair of entries into a
    // two-level diagonal factor (pair consecutive indices; a final lone
    // phase pairs with index 0).
    let mut pending: Vec<(usize, Complex64)> = (0..d)
        .map(|i| (i, work[(i, i)]))
        .filter(|(_, z)| (z.re - 1.0).abs() > 1e-12 || z.im.abs() > 1e-12)
        .collect();
    while pending.len() >= 2 {
        let (i, zi) = pending.remove(0);
        let (j, zj) = pending.remove(0);
        factors.push(TwoLevel {
            i: i.min(j),
            j: i.max(j),
            block: if i < j {
                [[zi, C_ZERO], [C_ZERO, zj]]
            } else {
                [[zj, C_ZERO], [C_ZERO, zi]]
            },
        });
    }
    if let Some((i, z)) = pending.pop() {
        let partner = if i == 0 { 1.min(d - 1) } else { 0 };
        if partner == i {
            // d == 1: a global phase; encode as a 1-element "two-level" is
            // impossible — fold into a degenerate factor on (0,0) is not
            // representable, so multiply into the last factor if any.
            if let Some(last) = factors.last_mut() {
                for row in &mut last.block {
                    for v in row {
                        *v *= z;
                    }
                }
            } else {
                factors.push(TwoLevel {
                    i: 0,
                    j: 0,
                    block: [[z, C_ZERO], [C_ZERO, C_ONE]],
                });
            }
        } else {
            factors.push(TwoLevel {
                i: i.min(partner),
                j: i.max(partner),
                block: if i < partner {
                    [[z, C_ZERO], [C_ZERO, C_ONE]]
                } else {
                    [[C_ONE, C_ZERO], [C_ZERO, z]]
                },
            });
        }
    }

    Ok(factors)
}

fn apply_two_level_left(m: &mut CMatrix, g: &TwoLevel) {
    let (i, j) = (g.i, g.j);
    for col in 0..m.ncols() {
        let a = m[(i, col)];
        let b = m[(j, col)];
        m[(i, col)] = g.block[0][0] * a + g.block[0][1] * b;
        m[(j, col)] = g.block[1][0] * a + g.block[1][1] * b;
    }
}

/// Multiplies a factor list back together (`factors[0] · factors[1] ⋯`).
pub fn reconstruct(factors: &[TwoLevel], dim: usize) -> CMatrix {
    let mut u = CMatrix::identity(dim);
    for f in factors {
        if f.i == f.j {
            // Degenerate global-phase factor (dim 1 edge case).
            let mut d = CMatrix::identity(dim);
            d[(f.i, f.i)] = f.block[0][0];
            u = u.matmul(&d);
        } else {
            u = u.matmul(&f.to_matrix(dim));
        }
    }
    u
}

/// ZYZ decomposition of a single-qubit unitary:
/// `U = e^{iα} · Rz(β) · Ry(γ) · Rz(δ)`.
///
/// Returns `(alpha, beta, gamma, delta)`.
///
/// # Errors
///
/// Returns [`SimError::NotUnitary`] if the matrix is not unitary.
pub fn zyz_decompose(u: &[[Complex64; 2]; 2]) -> Result<(f64, f64, f64, f64), SimError> {
    let m = CMatrix::from_rows(&[u[0].to_vec(), u[1].to_vec()]).expect("2×2");
    if !m.is_unitary(1e-9) {
        let dev = (&m.adjoint().matmul(&m) - &CMatrix::identity(2)).max_norm();
        return Err(SimError::NotUnitary { deviation: dev });
    }
    // det(U) = e^{2iα}; strip the global phase to get an SU(2) element.
    let det = u[0][0] * u[1][1] - u[0][1] * u[1][0];
    let alpha = det.arg() / 2.0;
    let phase = Complex64::cis(-alpha);
    let v = [
        [u[0][0] * phase, u[0][1] * phase],
        [u[1][0] * phase, u[1][1] * phase],
    ];
    // SU(2): v = [[cos(γ/2)e^{-i(β+δ)/2}, −sin(γ/2)e^{-i(β−δ)/2}],
    //             [sin(γ/2)e^{+i(β−δ)/2},  cos(γ/2)e^{+i(β+δ)/2}]]
    let gamma = 2.0 * v[1][0].abs().atan2(v[0][0].abs());
    let (bpd, bmd) = if v[0][0].abs() > 1e-12 && v[1][0].abs() > 1e-12 {
        (-2.0 * v[0][0].arg(), 2.0 * v[1][0].arg())
    } else if v[0][0].abs() > 1e-12 {
        // γ ≈ 0: only β+δ is determined; put everything in β.
        (-2.0 * v[0][0].arg(), 0.0)
    } else {
        // γ ≈ π: only β−δ is determined.
        (0.0, 2.0 * v[1][0].arg())
    };
    let beta = (bpd + bmd) / 2.0;
    let delta = (bpd - bmd) / 2.0;
    Ok((alpha, beta, gamma, delta))
}

/// Rebuilds `e^{iα}·Rz(β)·Ry(γ)·Rz(δ)` as a 2×2 array (inverse of
/// [`zyz_decompose`]; used by tests and by circuit emission).
pub fn zyz_compose(alpha: f64, beta: f64, gamma: f64, delta: f64) -> [[Complex64; 2]; 2] {
    use crate::gates::{ry, rz};
    let a = rz(beta);
    let b = ry(gamma);
    let c = rz(delta);
    // Multiply a·b·c.
    let mul = |x: &[[Complex64; 2]; 2], y: &[[Complex64; 2]; 2]| {
        let mut out = [[C_ZERO; 2]; 2];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = x[i][0] * y[0][j] + x[i][1] * y[1][j];
            }
        }
        out
    };
    let abc = mul(&mul(&a, &b), &c);
    let phase = Complex64::cis(alpha);
    [
        [abc[0][0] * phase, abc[0][1] * phase],
        [abc[1][0] * phase, abc[1][1] * phase],
    ]
}

/// Derived two-qubit-gate count for implementing a `dim × dim` unitary as
/// two-level factors with Gray-code chains: each factor with Hamming
/// distance `h` needs `2(h−1)` CNOT-chain steps plus one multi-controlled
/// single-qubit gate, itself costing `O(s)` Toffoli-ladder two-qubit gates
/// (`16(s−1)` with the standard V-chain construction, `s = log2(dim)`).
pub fn derived_two_qubit_count(factors: &[TwoLevel], dim: usize) -> usize {
    let s = dim.next_power_of_two().trailing_zeros() as usize;
    let mcu_cost = if s > 1 { 16 * (s - 1) } else { 1 };
    factors
        .iter()
        .map(|f| {
            if f.i == f.j {
                0
            } else {
                let h = f.hamming_distance() as usize;
                2 * h.saturating_sub(1) + mcu_cost
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn two_level_reconstructs_random_unitaries() {
        let mut rng = StdRng::seed_from_u64(11);
        for d in [2usize, 3, 4, 6, 8] {
            let u = CMatrix::random_unitary(d, &mut rng);
            let factors = two_level_decompose(&u).unwrap();
            let back = reconstruct(&factors, d);
            assert!(
                (&back - &u).max_norm() < 1e-9,
                "d={d}: err {}",
                (&back - &u).max_norm()
            );
            assert!(factors.len() <= d * (d - 1) / 2 + d / 2 + 1);
        }
    }

    #[test]
    fn two_level_of_identity_is_empty() {
        let factors = two_level_decompose(&CMatrix::identity(4)).unwrap();
        assert!(factors.is_empty());
    }

    #[test]
    fn two_level_factors_are_unitary() {
        let mut rng = StdRng::seed_from_u64(12);
        let u = CMatrix::random_unitary(5, &mut rng);
        for f in two_level_decompose(&u).unwrap() {
            if f.i != f.j {
                assert!(f.to_matrix(5).is_unitary(1e-9));
            }
        }
    }

    #[test]
    fn rejects_non_unitary() {
        let m = CMatrix::from_diag(&[Complex64::real(2.0), Complex64::real(1.0)]);
        assert!(two_level_decompose(&m).is_err());
    }

    #[test]
    fn zyz_round_trips_standard_gates() {
        for (name, g) in [
            ("h", gates::h()),
            ("x", gates::x()),
            ("y", gates::y()),
            ("z", gates::z()),
            ("s", gates::s()),
            ("t", gates::t()),
            ("rx", gates::rx(0.7)),
            ("ry", gates::ry(1.3)),
            ("rz", gates::rz(2.1)),
            ("phase", gates::phase(0.4)),
        ] {
            let (a, b, c, d) = zyz_decompose(&g).unwrap();
            let back = zyz_compose(a, b, c, d);
            for i in 0..2 {
                for j in 0..2 {
                    assert!(
                        (back[i][j] - g[i][j]).abs() < 1e-9,
                        "{name}: entry ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn zyz_round_trips_random_unitaries() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..20 {
            let u = CMatrix::random_unitary(2, &mut rng);
            let g = [[u[(0, 0)], u[(0, 1)]], [u[(1, 0)], u[(1, 1)]]];
            let (a, b, c, d) = zyz_decompose(&g).unwrap();
            let back = zyz_compose(a, b, c, d);
            for i in 0..2 {
                for j in 0..2 {
                    assert!((back[i][j] - g[i][j]).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn derived_count_positive_and_monotone_in_dim() {
        let mut rng = StdRng::seed_from_u64(14);
        let u4 = CMatrix::random_unitary(4, &mut rng);
        let u8 = CMatrix::random_unitary(8, &mut rng);
        let c4 = derived_two_qubit_count(&two_level_decompose(&u4).unwrap(), 4);
        let c8 = derived_two_qubit_count(&two_level_decompose(&u8).unwrap(), 8);
        assert!(c4 > 0);
        assert!(c8 > c4);
    }

    #[test]
    fn hamming_distance_drives_chain_length() {
        let f1 = TwoLevel {
            i: 0b000,
            j: 0b001,
            block: [[C_ONE, C_ZERO], [C_ZERO, C_ONE]],
        };
        let f2 = TwoLevel {
            i: 0b000,
            j: 0b111,
            block: [[C_ONE, C_ZERO], [C_ZERO, C_ONE]],
        };
        assert_eq!(f1.hamming_distance(), 1);
        assert_eq!(f2.hamming_distance(), 3);
        assert!(derived_two_qubit_count(&[f2], 8) > derived_two_qubit_count(&[f1], 8));
    }
}
