//! Remote circuit execution: a strict-JSON wire codec and a
//! [`RemoteBackend`] that implements the [`Backend`] trait over HTTP.
//!
//! The compile-then-execute split makes a [`Circuit`] a portable document;
//! this module makes it *executable on another host*. The pieces:
//!
//! * **Wire codec** — lossless, bit-exact JSON for circuits, states,
//!   RNG streams and execution requests/responses. Every `f64` is written
//!   in shortest-round-trip form (the `qsc-json` canonical writer), so a
//!   decoded circuit is `==` to the encoded one down to the last mantissa
//!   bit. RNG state travels as four hex strings (a `u64` does not fit a
//!   JSON number losslessly).
//! * **[`execute`]** — the server side: one parsed request plus a hosted
//!   [`Backend`] in, one response document out. The executor service in
//!   `qsc-serve` mounts this behind `POST /v1/exec`.
//! * **[`RemoteBackend`]** — the client side: a [`Backend`] whose four
//!   execution hooks (`run`, `sample`, `phase_distribution`,
//!   `estimate_probability`) are HTTP calls. Seeds travel in the request
//!   and the advanced RNG state travels back, so remote trajectory noise
//!   is **bit-identical** to running the inner backend locally. The
//!   pipeline's hot path reads scalar distributions, so full statevectors
//!   cross the wire only for `run`/`sample` — and `run` is only used by
//!   the gate-level ablation path.
//!
//! Transport failures (connection refused, dropped mid-response, non-2xx,
//! malformed reply) surface as [`SimError::Remote`], which the resilience
//! layer recognizes as *work never started*: it retries without perturbing
//! the seed, then falls back down the backend chain. The
//! `remote_call` fault point ([`qsc_fault::FaultPoint::RemoteCall`])
//! injects those failures deterministically for testing.

use crate::backend::{prepare_pooled, Backend, BufferPool};
use crate::circuit::{Circuit, Mat2, Op};
use crate::error::SimError;
use crate::state::QuantumState;
use qsc_json::{num, obj, s, JsonError, Value};
use qsc_linalg::{CMatrix, Complex64, C_ONE, C_ZERO};
use rand::rngs::StdRng;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// The executor endpoint path served by `qsc-serve`.
pub const EXEC_PATH: &str = "/v1/exec";

/// Default per-call socket timeout (connect / read / write).
pub const DEFAULT_TIMEOUT_MS: u64 = 60_000;

// ---------------------------------------------------------------------------
// f64 / complex / matrix codec
// ---------------------------------------------------------------------------

fn complex_to_json(z: Complex64) -> Value {
    Value::Arr(vec![num(z.re), num(z.im)])
}

fn complex_from_json(v: &Value, what: &str) -> Result<Complex64, JsonError> {
    let pair = v
        .as_array()
        .ok_or_else(|| JsonError::msg(format!("{what}: expected [re, im] pair")))?;
    if pair.len() != 2 {
        return Err(JsonError::msg(format!(
            "{what}: expected 2 entries, got {}",
            pair.len()
        )));
    }
    let re = pair[0]
        .as_f64()
        .ok_or_else(|| JsonError::msg(format!("{what}: re must be a number")))?;
    let im = pair[1]
        .as_f64()
        .ok_or_else(|| JsonError::msg(format!("{what}: im must be a number")))?;
    Ok(Complex64 { re, im })
}

fn amplitudes_to_json(amps: &[Complex64]) -> Value {
    Value::Arr(amps.iter().map(|&z| complex_to_json(z)).collect())
}

fn amplitudes_from_json(v: &Value, what: &str) -> Result<Vec<Complex64>, JsonError> {
    let arr = v
        .as_array()
        .ok_or_else(|| JsonError::msg(format!("{what}: expected an array of [re, im] pairs")))?;
    arr.iter()
        .enumerate()
        .map(|(i, e)| complex_from_json(e, &format!("{what}[{i}]")))
        .collect()
}

fn matrix_to_json(m: &CMatrix) -> Value {
    Value::Arr(
        (0..m.nrows())
            .map(|i| Value::Arr(m.row(i).iter().map(|&z| complex_to_json(z)).collect()))
            .collect(),
    )
}

fn matrix_from_json(v: &Value, what: &str) -> Result<CMatrix, JsonError> {
    let rows_v = v
        .as_array()
        .ok_or_else(|| JsonError::msg(format!("{what}: expected an array of rows")))?;
    let mut rows: Vec<Vec<Complex64>> = Vec::with_capacity(rows_v.len());
    for (i, row) in rows_v.iter().enumerate() {
        let entries = row
            .as_array()
            .ok_or_else(|| JsonError::msg(format!("{what}[{i}]: expected a row array")))?;
        let mut out = Vec::with_capacity(entries.len());
        for (j, e) in entries.iter().enumerate() {
            out.push(complex_from_json(e, &format!("{what}[{i}][{j}]"))?);
        }
        rows.push(out);
    }
    CMatrix::from_rows(&rows).map_err(|e| JsonError::msg(format!("{what}: {e}")))
}

// ---------------------------------------------------------------------------
// RNG codec — four hex words of xoshiro256** state
// ---------------------------------------------------------------------------

/// Encodes a generator's full state as four hex strings (lossless: a JSON
/// number cannot carry a `u64`).
pub fn rng_to_json(rng: &StdRng) -> Value {
    Value::Arr(rng.state().iter().map(|w| s(format!("{w:016x}"))).collect())
}

/// Decodes a generator whose stream continues exactly where
/// [`rng_to_json`]'s input left off.
pub fn rng_from_json(v: &Value) -> Result<StdRng, JsonError> {
    let arr = v
        .as_array()
        .ok_or_else(|| JsonError::msg("rng: expected an array of 4 hex words"))?;
    if arr.len() != 4 {
        return Err(JsonError::msg(format!(
            "rng: expected 4 hex words, got {}",
            arr.len()
        )));
    }
    let mut state = [0u64; 4];
    for (i, w) in arr.iter().enumerate() {
        let text = w
            .as_str()
            .ok_or_else(|| JsonError::msg(format!("rng[{i}]: expected a hex string")))?;
        state[i] = u64::from_str_radix(text, 16)
            .map_err(|_| JsonError::msg(format!("rng[{i}]: invalid hex word `{text}`")))?;
    }
    Ok(StdRng::from_state(state))
}

// ---------------------------------------------------------------------------
// Circuit codec
// ---------------------------------------------------------------------------

fn op_to_json(op: &Op) -> Value {
    match *op {
        Op::H(q) => obj([("gate", s("h")), ("q", num(q as f64))]),
        Op::X(q) => obj([("gate", s("x")), ("q", num(q as f64))]),
        Op::Y(q) => obj([("gate", s("y")), ("q", num(q as f64))]),
        Op::Z(q) => obj([("gate", s("z")), ("q", num(q as f64))]),
        Op::S(q) => obj([("gate", s("s")), ("q", num(q as f64))]),
        Op::T(q) => obj([("gate", s("t")), ("q", num(q as f64))]),
        Op::Phase { target, theta } => obj([
            ("gate", s("phase")),
            ("target", num(target as f64)),
            ("theta", num(theta)),
        ]),
        Op::Rz { target, theta } => obj([
            ("gate", s("rz")),
            ("target", num(target as f64)),
            ("theta", num(theta)),
        ]),
        Op::Ry { target, theta } => obj([
            ("gate", s("ry")),
            ("target", num(target as f64)),
            ("theta", num(theta)),
        ]),
        Op::Cnot { control, target } => obj([
            ("gate", s("cnot")),
            ("control", num(control as f64)),
            ("target", num(target as f64)),
        ]),
        Op::CPhase {
            control,
            target,
            theta,
        } => obj([
            ("gate", s("cphase")),
            ("control", num(control as f64)),
            ("target", num(target as f64)),
            ("theta", num(theta)),
        ]),
        Op::Swap(a, b) => obj([
            ("gate", s("swap")),
            ("a", num(a as f64)),
            ("b", num(b as f64)),
        ]),
        Op::Gate1 { target, ref matrix } => obj([
            ("gate", s("gate1")),
            ("target", num(target as f64)),
            (
                "matrix",
                Value::Arr(
                    matrix
                        .iter()
                        .flat_map(|row| row.iter())
                        .map(|&z| complex_to_json(z))
                        .collect(),
                ),
            ),
        ]),
        Op::BlockUnitary {
            control,
            ref matrix,
        } => {
            let mut fields = vec![("gate", s("block_unitary"))];
            if let Some(c) = control {
                fields.push(("control", num(c as f64)));
            }
            fields.push(("matrix", matrix_to_json(matrix)));
            obj(fields)
        }
        Op::PhaseCascade {
            block_qubits,
            ref phases,
            sign,
        } => obj([
            ("gate", s("phase_cascade")),
            ("block_qubits", num(block_qubits as f64)),
            (
                "phases",
                Value::Arr(phases.iter().map(|&p| num(p)).collect()),
            ),
            ("sign", num(sign)),
        ]),
    }
}

fn op_from_json(v: &Value, what: &str) -> Result<Op, JsonError> {
    let mut r = v.reader(what)?;
    let gate = r.req_str("gate")?.to_string();
    let op =
        match gate.as_str() {
            "h" | "x" | "y" | "z" | "s" | "t" => {
                let q = r
                    .required("q")?
                    .as_usize()
                    .ok_or_else(|| JsonError::msg(format!("{what}: q must be a qubit index")))?;
                match gate.as_str() {
                    "h" => Op::H(q),
                    "x" => Op::X(q),
                    "y" => Op::Y(q),
                    "z" => Op::Z(q),
                    "s" => Op::S(q),
                    _ => Op::T(q),
                }
            }
            "phase" | "rz" | "ry" => {
                let target = r.required("target")?.as_usize().ok_or_else(|| {
                    JsonError::msg(format!("{what}: target must be a qubit index"))
                })?;
                let theta = r
                    .required("theta")?
                    .as_f64()
                    .ok_or_else(|| JsonError::msg(format!("{what}: theta must be a number")))?;
                match gate.as_str() {
                    "phase" => Op::Phase { target, theta },
                    "rz" => Op::Rz { target, theta },
                    _ => Op::Ry { target, theta },
                }
            }
            "cnot" | "cphase" => {
                let control = r.required("control")?.as_usize().ok_or_else(|| {
                    JsonError::msg(format!("{what}: control must be a qubit index"))
                })?;
                let target = r.required("target")?.as_usize().ok_or_else(|| {
                    JsonError::msg(format!("{what}: target must be a qubit index"))
                })?;
                if gate == "cnot" {
                    Op::Cnot { control, target }
                } else {
                    let theta = r
                        .required("theta")?
                        .as_f64()
                        .ok_or_else(|| JsonError::msg(format!("{what}: theta must be a number")))?;
                    Op::CPhase {
                        control,
                        target,
                        theta,
                    }
                }
            }
            "swap" => {
                let a = r
                    .required("a")?
                    .as_usize()
                    .ok_or_else(|| JsonError::msg(format!("{what}: a must be a qubit index")))?;
                let b = r
                    .required("b")?
                    .as_usize()
                    .ok_or_else(|| JsonError::msg(format!("{what}: b must be a qubit index")))?;
                Op::Swap(a, b)
            }
            "gate1" => {
                let target = r.required("target")?.as_usize().ok_or_else(|| {
                    JsonError::msg(format!("{what}: target must be a qubit index"))
                })?;
                let flat = amplitudes_from_json(r.required("matrix")?, &format!("{what}.matrix"))?;
                if flat.len() != 4 {
                    return Err(JsonError::msg(format!(
                        "{what}.matrix: a gate1 matrix has 4 entries, got {}",
                        flat.len()
                    )));
                }
                let matrix: Mat2 = [[flat[0], flat[1]], [flat[2], flat[3]]];
                Op::Gate1 { target, matrix }
            }
            "block_unitary" => {
                let control = match r.take("control") {
                    Some(c) => Some(c.as_usize().ok_or_else(|| {
                        JsonError::msg(format!("{what}: control must be a qubit index"))
                    })?),
                    None => None,
                };
                let matrix = matrix_from_json(r.required("matrix")?, &format!("{what}.matrix"))?;
                Op::BlockUnitary {
                    control,
                    matrix: Arc::new(matrix),
                }
            }
            "phase_cascade" => {
                let block_qubits = r.required("block_qubits")?.as_usize().ok_or_else(|| {
                    JsonError::msg(format!("{what}: block_qubits must be a qubit count"))
                })?;
                let phases_v = r
                    .required("phases")?
                    .as_array()
                    .ok_or_else(|| JsonError::msg(format!("{what}: phases must be an array")))?;
                let mut phases = Vec::with_capacity(phases_v.len());
                for (i, p) in phases_v.iter().enumerate() {
                    phases.push(p.as_f64().ok_or_else(|| {
                        JsonError::msg(format!("{what}.phases[{i}]: expected a number"))
                    })?);
                }
                let sign = r
                    .required("sign")?
                    .as_f64()
                    .ok_or_else(|| JsonError::msg(format!("{what}: sign must be a number")))?;
                Op::PhaseCascade {
                    block_qubits,
                    phases: Arc::new(phases),
                    sign,
                }
            }
            other => return Err(JsonError::msg(format!("{what}: unknown gate `{other}`"))),
        };
    r.finish()?;
    Ok(op)
}

/// Encodes a circuit as a strict-JSON document
/// (`{"num_qubits": n, "ops": [...]}`): lossless down to every `f64` bit
/// of every gate parameter.
pub fn circuit_to_json(circuit: &Circuit) -> Value {
    obj([
        ("num_qubits", num(circuit.num_qubits() as f64)),
        (
            "ops",
            Value::Arr(circuit.ops().iter().map(op_to_json).collect()),
        ),
    ])
}

/// Decodes a circuit, re-validating every op through [`Circuit::push`]
/// (so a hostile document cannot smuggle out-of-range qubits or malformed
/// block payloads past the executor).
///
/// # Errors
///
/// Returns a [`JsonError`] naming the offending field for unknown gates,
/// unknown/missing fields and type mismatches, and for ops
/// [`Circuit::push`] rejects.
pub fn circuit_from_json(v: &Value) -> Result<Circuit, JsonError> {
    let mut r = v.reader("circuit")?;
    let num_qubits = r
        .required("num_qubits")?
        .as_usize()
        .ok_or_else(|| JsonError::msg("circuit: num_qubits must be a qubit count"))?;
    let ops = r
        .required("ops")?
        .as_array()
        .ok_or_else(|| JsonError::msg("circuit: ops must be an array"))?;
    let mut circuit = Circuit::new(num_qubits);
    for (i, op_v) in ops.iter().enumerate() {
        let op = op_from_json(op_v, &format!("circuit.ops[{i}]"))?;
        circuit
            .push(op)
            .map_err(|e| JsonError::msg(format!("circuit.ops[{i}]: {e}")))?;
    }
    r.finish()?;
    Ok(circuit)
}

// ---------------------------------------------------------------------------
// SimError codec — errors cross the wire as typed documents, so the
// client-side failure taxonomy matches local execution exactly.
// ---------------------------------------------------------------------------

fn sim_error_to_json(e: &SimError) -> Value {
    match e {
        SimError::NotPowerOfTwo { len } => {
            obj([("kind", s("not_power_of_two")), ("len", num(*len as f64))])
        }
        SimError::ZeroNorm => obj([("kind", s("zero_norm"))]),
        SimError::QubitOutOfRange { qubit, num_qubits } => obj([
            ("kind", s("qubit_out_of_range")),
            ("qubit", num(*qubit as f64)),
            ("num_qubits", num(*num_qubits as f64)),
        ]),
        SimError::DimensionMismatch { context } => obj([
            ("kind", s("dimension_mismatch")),
            ("context", s(context.clone())),
        ]),
        SimError::NotUnitary { deviation } => {
            obj([("kind", s("not_unitary")), ("deviation", num(*deviation))])
        }
        SimError::InvalidParameter { context } => obj([
            ("kind", s("invalid_parameter")),
            ("context", s(context.clone())),
        ]),
        SimError::BudgetExceeded {
            requested_bytes,
            budget_bytes,
            context,
        } => obj([
            ("kind", s("budget_exceeded")),
            ("requested_bytes", s(format!("{requested_bytes:x}"))),
            ("budget_bytes", s(format!("{budget_bytes:x}"))),
            ("context", s(context.clone())),
        ]),
        SimError::NormDrift { norm, context } => obj([
            ("kind", s("norm_drift")),
            ("norm", num(*norm)),
            ("context", s(context.clone())),
        ]),
        SimError::Injected { point } => obj([("kind", s("injected")), ("point", s(*point))]),
        SimError::Remote { addr, context } => obj([
            ("kind", s("remote")),
            ("addr", s(addr.clone())),
            ("context", s(context.clone())),
        ]),
    }
}

fn u128_from_hex(v: &Value, what: &str) -> Result<u128, JsonError> {
    let text = v
        .as_str()
        .ok_or_else(|| JsonError::msg(format!("{what}: expected a hex string")))?;
    u128::from_str_radix(text, 16)
        .map_err(|_| JsonError::msg(format!("{what}: invalid hex value `{text}`")))
}

fn sim_error_from_json(v: &Value) -> Result<SimError, JsonError> {
    let mut r = v.reader("sim_error")?;
    let kind = r.req_str("kind")?.to_string();
    let err = match kind.as_str() {
        "not_power_of_two" => SimError::NotPowerOfTwo {
            len: r
                .required("len")?
                .as_usize()
                .ok_or_else(|| JsonError::msg("sim_error: len must be a length"))?,
        },
        "zero_norm" => SimError::ZeroNorm,
        "qubit_out_of_range" => SimError::QubitOutOfRange {
            qubit: r
                .required("qubit")?
                .as_usize()
                .ok_or_else(|| JsonError::msg("sim_error: qubit must be an index"))?,
            num_qubits: r
                .required("num_qubits")?
                .as_usize()
                .ok_or_else(|| JsonError::msg("sim_error: num_qubits must be a count"))?,
        },
        "dimension_mismatch" => SimError::DimensionMismatch {
            context: r.req_str("context")?.to_string(),
        },
        "not_unitary" => SimError::NotUnitary {
            deviation: r
                .required("deviation")?
                .as_f64()
                .ok_or_else(|| JsonError::msg("sim_error: deviation must be a number"))?,
        },
        "invalid_parameter" => SimError::InvalidParameter {
            context: r.req_str("context")?.to_string(),
        },
        "budget_exceeded" => SimError::BudgetExceeded {
            requested_bytes: u128_from_hex(
                r.required("requested_bytes")?,
                "sim_error.requested_bytes",
            )?,
            budget_bytes: u128_from_hex(r.required("budget_bytes")?, "sim_error.budget_bytes")?,
            context: r.req_str("context")?.to_string(),
        },
        "norm_drift" => {
            // The canonical writer encodes non-finite numbers as `null`,
            // and a NaN norm is precisely what this error reports.
            let norm_v = r.required("norm")?;
            let norm = match norm_v {
                Value::Null => f64::NAN,
                other => other
                    .as_f64()
                    .ok_or_else(|| JsonError::msg("sim_error: norm must be a number"))?,
            };
            SimError::NormDrift {
                norm,
                context: r.req_str("context")?.to_string(),
            }
        }
        "injected" => {
            let point = r.req_str("point")?;
            let point = qsc_fault::FaultPoint::parse(point)
                .ok_or_else(|| JsonError::msg(format!("sim_error: unknown fault point `{point}`")))?
                .name();
            SimError::Injected { point }
        }
        "remote" => SimError::Remote {
            addr: r.req_str("addr")?.to_string(),
            context: r.req_str("context")?.to_string(),
        },
        other => return Err(JsonError::msg(format!("sim_error: unknown kind `{other}`"))),
    };
    r.finish()?;
    Ok(err)
}

// ---------------------------------------------------------------------------
// Server side: execute one request document on a hosted backend
// ---------------------------------------------------------------------------

/// Detects a pristine basis state (exactly one bit-exact `1+0i` amplitude,
/// all others bit-exact zero), letting `run` requests ship an index instead
/// of `2^n` amplitudes.
fn as_basis_index(state: &QuantumState) -> Option<usize> {
    let mut found = None;
    for (i, &a) in state.amplitudes().iter().enumerate() {
        if a == C_ZERO {
            continue;
        }
        if a == C_ONE && found.is_none() {
            found = Some(i);
        } else {
            return None;
        }
    }
    found
}

fn state_from_wire(
    basis: Option<(usize, usize)>,
    amps: Option<Vec<Complex64>>,
    backend: &dyn Backend,
) -> Result<Result<QuantumState, SimError>, JsonError> {
    match (basis, amps) {
        (Some((num_qubits, index)), None) => {
            if num_qubits >= usize::BITS as usize || index >= (1usize << num_qubits) {
                return Err(JsonError::msg(format!(
                    "state: basis index {index} out of range for {num_qubits} qubits"
                )));
            }
            Ok(backend.try_prepare(num_qubits, index))
        }
        (None, Some(amps)) => {
            if amps.is_empty() || !amps.len().is_power_of_two() {
                return Err(JsonError::msg(format!(
                    "state: amplitude count {} is not a power of two",
                    amps.len()
                )));
            }
            Ok(Ok(QuantumState::from_raw(amps)))
        }
        _ => Err(JsonError::msg(
            "state: exactly one of `basis`/`amplitudes` is required",
        )),
    }
}

/// Executes one wire request against a hosted backend and builds the
/// response document.
///
/// The response always carries the advanced `rng` state. Simulator errors
/// are **part of the response** (`{"sim_error": ...}`), not a transport
/// failure: the client re-raises them as the same typed [`SimError`] local
/// execution would produce. The `backend` request field is the caller's
/// concern (the executor service resolves it to the `backend` argument
/// before calling here) and is ignored if present.
///
/// # Errors
///
/// Returns a [`JsonError`] (the service answers 400) only for malformed
/// requests: unknown ops, unknown or missing fields, type mismatches.
pub fn execute(request: &Value, backend: &dyn Backend) -> Result<Value, JsonError> {
    let mut r = request.reader("exec request")?;
    let op = r.req_str("op")?.to_string();
    let mut rng = rng_from_json(r.required("rng")?)?;
    let _ = r.take("backend"); // resolved by the service before dispatch

    let read_basis = |r: &mut qsc_json::ObjReader| -> Result<Option<(usize, usize)>, JsonError> {
        match r.take("basis") {
            None => Ok(None),
            Some(v) => {
                let mut br = v.reader("state.basis")?;
                let num_qubits = br
                    .required("num_qubits")?
                    .as_usize()
                    .ok_or_else(|| JsonError::msg("state.basis: num_qubits must be a count"))?;
                let index = br
                    .required("index")?
                    .as_usize()
                    .ok_or_else(|| JsonError::msg("state.basis: index must be an index"))?;
                br.finish()?;
                Ok(Some((num_qubits, index)))
            }
        }
    };
    let read_amps = |r: &mut qsc_json::ObjReader| -> Result<Option<Vec<Complex64>>, JsonError> {
        match r.take("amplitudes") {
            None => Ok(None),
            Some(v) => Ok(Some(amplitudes_from_json(v, "amplitudes")?)),
        }
    };

    let outcome: Result<Value, SimError> = match op.as_str() {
        "run" => {
            let circuit = circuit_from_json(r.required("circuit")?)?;
            let basis = read_basis(&mut r)?;
            let amps = read_amps(&mut r)?;
            r.finish()?;
            match state_from_wire(basis, amps, backend)? {
                Err(e) => Err(e),
                Ok(mut state) => match backend.run(&circuit, &mut state, &mut rng) {
                    Err(e) => Err(e),
                    Ok(()) => {
                        let payload = amplitudes_to_json(state.amplitudes());
                        backend.recycle(state);
                        Ok(obj([("amplitudes", payload)]))
                    }
                },
            }
        }
        "sample" => {
            let shots = r
                .required("shots")?
                .as_usize()
                .ok_or_else(|| JsonError::msg("exec request: shots must be a count"))?;
            let amps = read_amps(&mut r)?
                .ok_or_else(|| JsonError::msg("exec request: sample needs `amplitudes`"))?;
            r.finish()?;
            match state_from_wire(None, Some(amps), backend)? {
                Err(e) => Err(e),
                Ok(state) => backend.sample(&state, shots, &mut rng).map(|counts| {
                    obj([(
                        "counts",
                        Value::Arr(
                            counts
                                .iter()
                                .map(|&(m, c)| Value::Arr(vec![num(m as f64), num(c as f64)]))
                                .collect(),
                        ),
                    )])
                }),
            }
        }
        "phase_distribution" => {
            let phi = r
                .required("phi")?
                .as_f64()
                .ok_or_else(|| JsonError::msg("exec request: phi must be a number"))?;
            let t = r
                .required("t")?
                .as_usize()
                .ok_or_else(|| JsonError::msg("exec request: t must be a bit count"))?;
            r.finish()?;
            backend
                .phase_distribution(phi, t, &mut rng)
                .map(|probs| obj([("probs", Value::Arr(probs.iter().map(|&p| num(p)).collect()))]))
        }
        "estimate_probability" => {
            let p = r
                .required("p")?
                .as_f64()
                .ok_or_else(|| JsonError::msg("exec request: p must be a number"))?;
            r.finish()?;
            backend
                .estimate_probability(p, &mut rng)
                .map(|value| obj([("value", num(value))]))
        }
        other => {
            return Err(JsonError::msg(format!(
                "exec request: unknown op `{other}`"
            )))
        }
    };

    let rng_v = rng_to_json(&rng);
    Ok(match outcome {
        Ok(Value::Obj(mut fields)) => {
            fields.insert(0, ("rng".to_string(), rng_v));
            Value::Obj(fields)
        }
        Ok(other) => obj([("rng", rng_v), ("payload", other)]),
        Err(e) => obj([("rng", rng_v), ("sim_error", sim_error_to_json(&e))]),
    })
}

// ---------------------------------------------------------------------------
// Client side: a minimal HTTP/1.1 POST (std::net only)
// ---------------------------------------------------------------------------

fn transport_err(addr: &str, context: impl Into<String>) -> SimError {
    SimError::Remote {
        addr: addr.to_string(),
        context: context.into(),
    }
}

fn http_post(addr: &str, path: &str, body: &str, timeout: Duration) -> Result<String, SimError> {
    let sock_addr = addr
        .to_socket_addrs()
        .map_err(|e| transport_err(addr, format!("address resolution failed: {e}")))?
        .next()
        .ok_or_else(|| transport_err(addr, "address resolved to nothing"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)
        .map_err(|e| transport_err(addr, format!("connect failed: {e}")))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| transport_err(addr, format!("socket configuration failed: {e}")))?;

    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\
         Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| transport_err(addr, format!("request write failed: {e}")))?;

    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| transport_err(addr, format!("response read failed: {e}")))?;
    let text = String::from_utf8(raw).map_err(|_| transport_err(addr, "response is not UTF-8"))?;

    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| transport_err(addr, "response truncated before the body"))?;
    let status_line = head.lines().next().unwrap_or_default();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| transport_err(addr, format!("malformed status line `{status_line}`")))?;
    let content_length: Option<usize> = head
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok());
    let body_text = match content_length {
        Some(len) if payload.len() >= len => &payload[..len],
        Some(len) => {
            return Err(transport_err(
                addr,
                format!("response truncated: {} of {len} body bytes", payload.len()),
            ))
        }
        None => payload,
    };
    if status != 200 {
        // Surface the server's error message if the body carries one.
        let detail = Value::parse(body_text)
            .ok()
            .and_then(|v| v.get("error").and_then(|e| e.as_str().map(String::from)))
            .unwrap_or_else(|| body_text.chars().take(200).collect());
        return Err(transport_err(addr, format!("status {status}: {detail}")));
    }
    Ok(body_text.to_string())
}

// ---------------------------------------------------------------------------
// RemoteBackend
// ---------------------------------------------------------------------------

/// A [`Backend`] whose execution hooks run on a remote executor service.
///
/// `prepare`/`recycle` stay local (a basis state is cheaper to describe
/// than to transfer); `run`, `sample`, `phase_distribution` and
/// `estimate_probability` POST wire documents to `/v1/exec` on the
/// configured executor, which hosts the *inner* backend. The caller's RNG
/// state travels with every request and the advanced state replaces it on
/// return, so results — including Monte-Carlo trajectory noise — are
/// bit-identical to executing the inner backend in-process.
///
/// The backend reports the inner backend's `exact_statistics` /
/// `pure_state` / `phase_register_limit` traits (set via
/// [`RemoteBackend::with_traits`]), so bit-exact fast paths, the
/// gate-level-path guard and the phase-register budget check all behave
/// exactly as they would against the inner backend locally.
#[derive(Debug)]
pub struct RemoteBackend {
    addr: String,
    inner: Value,
    pool: BufferPool,
    timeout: Duration,
    exact: bool,
    pure: bool,
    register_limit: Option<usize>,
}

impl RemoteBackend {
    /// A remote backend executing on `addr` (`host:port`), hosting the
    /// inner backend described by `inner` (a `BackendConfig` JSON
    /// document, e.g. `{"statevector": {}}`). Traits default to the exact
    /// statevector's; see [`RemoteBackend::with_traits`].
    pub fn new(addr: impl Into<String>, inner: Value) -> Self {
        Self {
            addr: addr.into(),
            inner,
            pool: BufferPool::default(),
            timeout: Duration::from_millis(DEFAULT_TIMEOUT_MS),
            exact: true,
            pure: true,
            register_limit: None,
        }
    }

    /// Sets the trait surface mirrored from the inner backend.
    pub fn with_traits(
        mut self,
        exact_statistics: bool,
        pure_state: bool,
        register_limit: Option<usize>,
    ) -> Self {
        self.exact = exact_statistics;
        self.pure = pure_state;
        self.register_limit = register_limit;
        self
    }

    /// Sets the per-call socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The executor address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The inner backend's configuration document.
    pub fn inner_config(&self) -> &Value {
        &self.inner
    }

    /// The deterministic `remote_call` fault hook: inside an armed fault
    /// scope this simulates a dropped connection *before* any bytes move.
    fn injected_drop(&self) -> Result<(), SimError> {
        if qsc_fault::should_fire(qsc_fault::FaultPoint::RemoteCall) {
            Err(transport_err(
                &self.addr,
                "injected connection drop (remote_call)",
            ))
        } else {
            Ok(())
        }
    }

    fn call(
        &self,
        fields: Vec<(&'static str, Value)>,
        rng: &mut StdRng,
    ) -> Result<Value, SimError> {
        self.injected_drop()?;
        let mut all = vec![];
        let mut fields = fields;
        all.append(&mut fields);
        all.push(("backend", self.inner.clone()));
        all.push(("rng", rng_to_json(rng)));
        let body = obj(all)
            .to_json_canonical()
            .map_err(|e| transport_err(&self.addr, format!("request encoding failed: {e}")))?;
        let response = http_post(&self.addr, EXEC_PATH, &body, self.timeout)?;
        let doc = Value::parse(&response)
            .map_err(|e| transport_err(&self.addr, format!("malformed response: {e}")))?;
        let rng_v = doc
            .get("rng")
            .ok_or_else(|| transport_err(&self.addr, "response missing rng state"))?;
        *rng = rng_from_json(rng_v)
            .map_err(|e| transport_err(&self.addr, format!("malformed response rng: {e}")))?;
        if let Some(err_v) = doc.get("sim_error") {
            return Err(sim_error_from_json(err_v).unwrap_or_else(|e| {
                transport_err(&self.addr, format!("malformed sim_error: {e}"))
            }));
        }
        Ok(doc)
    }
}

impl Backend for RemoteBackend {
    fn name(&self) -> &'static str {
        "remote"
    }

    fn prepare(&self, num_qubits: usize, basis_index: usize) -> QuantumState {
        prepare_pooled(&self.pool, num_qubits, basis_index)
    }

    fn run(
        &self,
        circuit: &Circuit,
        state: &mut QuantumState,
        rng: &mut StdRng,
    ) -> Result<(), SimError> {
        let mut fields = vec![("op", s("run")), ("circuit", circuit_to_json(circuit))];
        match as_basis_index(state) {
            Some(index) if state.num_qubits() == circuit.num_qubits() => fields.push((
                "basis",
                obj([
                    ("num_qubits", num(circuit.num_qubits() as f64)),
                    ("index", num(index as f64)),
                ]),
            )),
            _ => fields.push(("amplitudes", amplitudes_to_json(state.amplitudes()))),
        }
        let doc = self.call(fields, rng)?;
        let amps_v = doc
            .get("amplitudes")
            .ok_or_else(|| transport_err(&self.addr, "run response missing amplitudes"))?;
        let amps = amplitudes_from_json(amps_v, "amplitudes")
            .map_err(|e| transport_err(&self.addr, format!("malformed amplitudes: {e}")))?;
        if amps.is_empty() || !amps.len().is_power_of_two() {
            return Err(transport_err(
                &self.addr,
                format!("run response has {} amplitudes", amps.len()),
            ));
        }
        // The evolved state replaces the local one wholesale: for a
        // density-matrix inner backend it is a vectorized ρ wider than the
        // circuit register, exactly as the inner backend's own `run` would
        // leave it.
        *state = QuantumState::from_raw(amps);
        Ok(())
    }

    fn sample(
        &self,
        state: &QuantumState,
        shots: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<(usize, usize)>, SimError> {
        let fields = vec![
            ("op", s("sample")),
            ("shots", num(shots as f64)),
            ("amplitudes", amplitudes_to_json(state.amplitudes())),
        ];
        let doc = self.call(fields, rng)?;
        let counts_v = doc
            .get("counts")
            .and_then(|v| v.as_array())
            .ok_or_else(|| transport_err(&self.addr, "sample response missing counts"))?;
        let mut counts = Vec::with_capacity(counts_v.len());
        for pair in counts_v {
            let entry = pair.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                transport_err(&self.addr, "sample response has a malformed count pair")
            })?;
            let m = entry[0].as_usize();
            let c = entry[1].as_usize();
            match (m, c) {
                (Some(m), Some(c)) => counts.push((m, c)),
                _ => {
                    return Err(transport_err(
                        &self.addr,
                        "sample response has a non-integer count",
                    ))
                }
            }
        }
        Ok(counts)
    }

    fn recycle(&self, state: QuantumState) {
        self.pool.release(state.into_amplitudes());
    }

    fn exact_statistics(&self) -> bool {
        self.exact
    }

    fn pure_state(&self) -> bool {
        self.pure
    }

    fn phase_register_limit(&self) -> Option<usize> {
        self.register_limit
    }

    fn phase_distribution(
        &self,
        phi: f64,
        t: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<f64>, SimError> {
        let fields = vec![
            ("op", s("phase_distribution")),
            ("phi", num(phi)),
            ("t", num(t as f64)),
        ];
        let doc = self.call(fields, rng)?;
        let probs_v = doc
            .get("probs")
            .and_then(|v| v.as_array())
            .ok_or_else(|| transport_err(&self.addr, "response missing probs"))?;
        probs_v
            .iter()
            .map(|p| {
                p.as_f64().ok_or_else(|| {
                    transport_err(&self.addr, "response has a non-numeric probability")
                })
            })
            .collect()
    }

    fn estimate_probability(&self, p: f64, rng: &mut StdRng) -> Result<f64, SimError> {
        let fields = vec![("op", s("estimate_probability")), ("p", num(p))];
        let doc = self.call(fields, rng)?;
        doc.get("value")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| transport_err(&self.addr, "response missing value"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{NoisyStatevector, Statevector};
    use rand::{Rng, SeedableRng};

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Op::H(0)).unwrap();
        c.push(Op::Cnot {
            control: 0,
            target: 1,
        })
        .unwrap();
        c
    }

    #[test]
    fn circuit_round_trips_every_op_variant() {
        let mut c = Circuit::new(3);
        let ops = vec![
            Op::H(0),
            Op::X(0),
            Op::Y(1),
            Op::Z(2),
            Op::S(0),
            Op::T(1),
            Op::Phase {
                target: 0,
                theta: 0.25,
            },
            Op::Rz {
                target: 1,
                theta: -0.5,
            },
            Op::Ry {
                target: 2,
                theta: 0.75,
            },
            Op::Cnot {
                control: 0,
                target: 1,
            },
            Op::CPhase {
                control: 1,
                target: 2,
                theta: 0.1,
            },
            Op::Swap(0, 2),
            Op::Gate1 {
                target: 1,
                matrix: crate::gates::ry(0.3),
            },
            Op::BlockUnitary {
                control: None,
                matrix: Arc::new(CMatrix::identity(2)),
            },
            Op::BlockUnitary {
                control: Some(2),
                matrix: Arc::new(CMatrix::identity(2)),
            },
            Op::PhaseCascade {
                block_qubits: 1,
                phases: Arc::new(vec![0.0, 0.5]),
                sign: -1.0,
            },
        ];
        for op in ops {
            c.push(op).unwrap();
        }
        let doc = circuit_to_json(&c);
        let text = doc.to_json_canonical().unwrap();
        let back = circuit_from_json(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(c, back);
    }

    /// Tiny splitmix64 step, mirroring the `canonical_preserves_f64_bits`
    /// property test in `qsc-json` (no `proptest` in the tree).
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn codec_preserves_every_f64_bit_pattern() {
        // 2000 random bit patterns through gate parameters, matrix entries
        // and amplitude payloads: the wire must be bit-lossless for all of
        // them, and the op sequence must come back in order.
        let mut state = 0xD1CEu64;
        let mut thetas = Vec::new();
        while thetas.len() < 2000 {
            let x = f64::from_bits(splitmix(&mut state));
            if x.is_finite() {
                thetas.push(x);
            }
        }
        for chunk in thetas.chunks(40) {
            let mut c = Circuit::new(2);
            for (i, &theta) in chunk.iter().enumerate() {
                let target = i % 2;
                match i % 3 {
                    0 => c.push(Op::Phase { target, theta }).unwrap(),
                    1 => c.push(Op::Rz { target, theta }).unwrap(),
                    _ => c.push(Op::Ry { target, theta }).unwrap(),
                }
            }
            let text = circuit_to_json(&c).to_json_canonical().unwrap();
            let back = circuit_from_json(&Value::parse(&text).unwrap()).unwrap();
            assert_eq!(back.ops().len(), c.ops().len());
            for (a, b) in c.ops().iter().zip(back.ops()) {
                let (ta, tb) = match (a, b) {
                    (Op::Phase { theta: ta, .. }, Op::Phase { theta: tb, .. })
                    | (Op::Rz { theta: ta, .. }, Op::Rz { theta: tb, .. })
                    | (Op::Ry { theta: ta, .. }, Op::Ry { theta: tb, .. }) => (ta, tb),
                    other => panic!("op variant changed across the wire: {other:?}"),
                };
                assert_eq!(ta.to_bits(), tb.to_bits(), "{ta} vs {tb}");
            }
        }

        // The same patterns as amplitude components.
        let amps: Vec<Complex64> = thetas[..128]
            .chunks(2)
            .map(|p| Complex64 { re: p[0], im: p[1] })
            .collect();
        let text = amplitudes_to_json(&amps).to_json_canonical().unwrap();
        let back = amplitudes_from_json(&Value::parse(&text).unwrap(), "amps").unwrap();
        for (a, b) in amps.iter().zip(&back) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn truncated_payload_rejected_with_position() {
        let full = circuit_to_json(&bell()).to_json_canonical().unwrap();
        let cut = &full[..full.len() - 7];
        let err = Value::parse(cut).unwrap_err();
        assert!(
            err.line >= 1 && err.col >= 1,
            "truncation error should carry a position: {err:?}"
        );
    }

    #[test]
    fn rng_state_round_trips_mid_stream() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..13 {
            let _: u64 = rng.gen();
        }
        let doc = rng_to_json(&rng);
        let text = doc.to_json_canonical().unwrap();
        let mut back = rng_from_json(&Value::parse(&text).unwrap()).unwrap();
        for _ in 0..50 {
            assert_eq!(rng.gen::<u64>(), back.gen::<u64>());
        }
    }

    #[test]
    fn unknown_gate_and_unknown_field_rejected() {
        let bad_gate =
            Value::parse(r#"{"num_qubits":1,"ops":[{"gate":"frobnicate","q":0}]}"#).unwrap();
        let err = circuit_from_json(&bad_gate).unwrap_err();
        assert!(err.to_string().contains("frobnicate"), "{err}");

        let extra = Value::parse(r#"{"num_qubits":1,"ops":[{"gate":"h","q":0,"zap":1}]}"#).unwrap();
        let err = circuit_from_json(&extra).unwrap_err();
        assert!(err.to_string().contains("zap"), "{err}");
    }

    #[test]
    fn decode_revalidates_through_push() {
        // Qubit out of range must be rejected by the decoder, not at run
        // time on the executor.
        let doc = Value::parse(r#"{"num_qubits":1,"ops":[{"gate":"h","q":7}]}"#).unwrap();
        let err = circuit_from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn sim_errors_round_trip() {
        let cases = vec![
            SimError::NotPowerOfTwo { len: 3 },
            SimError::ZeroNorm,
            SimError::QubitOutOfRange {
                qubit: 9,
                num_qubits: 4,
            },
            SimError::DimensionMismatch {
                context: "x".into(),
            },
            SimError::NotUnitary { deviation: 0.25 },
            SimError::InvalidParameter {
                context: "y".into(),
            },
            SimError::BudgetExceeded {
                requested_bytes: u128::MAX,
                budget_bytes: 1 << 70,
                context: "z".into(),
            },
            SimError::NormDrift {
                norm: f64::NAN,
                context: "w".into(),
            },
            SimError::Injected {
                point: "backend_run",
            },
            SimError::Remote {
                addr: "127.0.0.1:1".into(),
                context: "refused".into(),
            },
        ];
        for e in cases {
            let text = sim_error_to_json(&e).to_json_canonical().unwrap();
            let back = sim_error_from_json(&Value::parse(&text).unwrap()).unwrap();
            match (&e, &back) {
                // NaN breaks PartialEq; compare the bits through Display.
                (SimError::NormDrift { .. }, SimError::NormDrift { .. }) => {
                    assert_eq!(e.to_string(), back.to_string());
                }
                _ => assert_eq!(e, back),
            }
        }
    }

    #[test]
    fn execute_runs_a_circuit_from_a_basis_request() {
        let backend = Statevector::new();
        let mut rng = StdRng::seed_from_u64(1);
        let request = obj([
            ("op", s("run")),
            ("circuit", circuit_to_json(&bell())),
            (
                "basis",
                obj([("num_qubits", num(2.0)), ("index", num(0.0))]),
            ),
            ("rng", rng_to_json(&rng)),
        ]);
        let response = execute(&request, &backend).unwrap();
        let amps = amplitudes_from_json(response.get("amplitudes").unwrap(), "amps").unwrap();
        let expected = backend.execute(&bell(), 0, &mut rng).unwrap();
        assert_eq!(amps, expected.amplitudes());
    }

    #[test]
    fn execute_reports_sim_errors_in_band() {
        // A 2-qubit circuit against a 1-qubit amplitude state: a typed
        // dimension mismatch, not a transport failure.
        let backend = Statevector::new();
        let rng = StdRng::seed_from_u64(2);
        let request = obj([
            ("op", s("run")),
            ("circuit", circuit_to_json(&bell())),
            ("amplitudes", amplitudes_to_json(&[C_ONE, C_ZERO])),
            ("rng", rng_to_json(&rng)),
        ]);
        let response = execute(&request, &backend).unwrap();
        let err = sim_error_from_json(response.get("sim_error").unwrap()).unwrap();
        assert!(matches!(err, SimError::DimensionMismatch { .. }), "{err}");
    }

    #[test]
    fn execute_rejects_malformed_requests() {
        let backend = Statevector::new();
        let rng = StdRng::seed_from_u64(3);
        let unknown_op = obj([("op", s("teleport")), ("rng", rng_to_json(&rng))]);
        assert!(execute(&unknown_op, &backend).is_err());
        let extra_field = obj([
            ("op", s("estimate_probability")),
            ("p", num(0.5)),
            ("rng", rng_to_json(&rng)),
            ("surprise", num(1.0)),
        ]);
        assert!(execute(&extra_field, &backend).is_err());
    }

    #[test]
    fn execute_advances_and_returns_the_rng_state() {
        // The noisy backend draws during `run`; the response rng must equal
        // the post-run local stream.
        let backend = NoisyStatevector::new(0.2, 0.0);
        let rng0 = StdRng::seed_from_u64(7);
        let request = obj([
            ("op", s("run")),
            ("circuit", circuit_to_json(&bell())),
            (
                "basis",
                obj([("num_qubits", num(2.0)), ("index", num(0.0))]),
            ),
            ("rng", rng_to_json(&rng0)),
        ]);
        let response = execute(&request, &backend).unwrap();
        let remote_rng = rng_from_json(response.get("rng").unwrap()).unwrap();
        let mut local_rng = rng0;
        backend.execute(&bell(), 0, &mut local_rng).unwrap();
        assert_eq!(local_rng, remote_rng);
    }

    #[test]
    fn basis_detection_matches_fresh_preparations_only() {
        let backend = Statevector::new();
        let state = backend.prepare(3, 5);
        assert_eq!(as_basis_index(&state), Some(5));
        let mut rng = StdRng::seed_from_u64(4);
        let evolved = backend.execute(&bell(), 0, &mut rng).unwrap();
        assert_eq!(as_basis_index(&evolved), None);
    }

    #[test]
    fn remote_backend_maps_connection_failures_to_remote_errors() {
        // Nothing listens on this port: every hook must fail with the typed
        // transport error, not panic or hang.
        let backend = RemoteBackend::new("127.0.0.1:9", obj([("statevector", obj([]))]))
            .with_timeout(Duration::from_millis(200));
        let mut rng = StdRng::seed_from_u64(1);
        let mut state = backend.prepare(2, 0);
        let err = backend.run(&bell(), &mut state, &mut rng).unwrap_err();
        assert!(matches!(err, SimError::Remote { .. }), "{err}");
        let err = backend.estimate_probability(0.5, &mut rng).unwrap_err();
        assert!(matches!(err, SimError::Remote { .. }), "{err}");
    }

    #[test]
    fn remote_call_fault_point_fires_without_touching_the_network() {
        use qsc_fault::{scope, FaultPlan, FaultPoint};
        let backend = RemoteBackend::new("203.0.113.1:1", obj([("statevector", obj([]))]));
        let plan = FaultPlan::seeded(1).with_rate(FaultPoint::RemoteCall, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let err = scope(plan, 0, || {
            backend.estimate_probability(0.5, &mut rng).unwrap_err()
        });
        assert!(
            err.to_string().contains("injected connection drop"),
            "{err}"
        );
    }
}
