//! Error types for the quantum simulator.

use std::error::Error;
use std::fmt;

/// Errors produced by the state-vector simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An amplitude vector's length is not a power of two.
    NotPowerOfTwo {
        /// The offending length.
        len: usize,
    },
    /// The state vector is (numerically) unnormalizable.
    ZeroNorm,
    /// A qubit index is outside the register.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The register size.
        num_qubits: usize,
    },
    /// A supplied matrix has the wrong dimensions for its targets.
    DimensionMismatch {
        /// Human-readable description.
        context: String,
    },
    /// The operator failed a unitarity check.
    NotUnitary {
        /// Measured deviation `‖U†U − I‖_max`.
        deviation: f64,
    },
    /// Invalid algorithm parameter (e.g. zero precision bits).
    InvalidParameter {
        /// Human-readable description.
        context: String,
    },
    /// A register's estimated memory footprint exceeds the state budget —
    /// returned by the pre-allocation checks *before* a `2^n`/`4^n` buffer
    /// would be committed, instead of aborting the process.
    BudgetExceeded {
        /// Bytes the requested register would need.
        requested_bytes: u128,
        /// The budget in force (see [`crate::budget`]).
        budget_bytes: u128,
        /// What was being allocated.
        context: String,
    },
    /// A state that must be ℓ2-normalized drifted off norm 1 (or became
    /// non-finite) beyond tolerance — numerical-instability guard.
    NormDrift {
        /// The measured norm (may be NaN/∞).
        norm: f64,
        /// Where the drift was detected.
        context: String,
    },
    /// A deterministic fault-injection plan fired at this point (chaos
    /// testing only; never produced on un-instrumented runs).
    Injected {
        /// The fault-point name that fired.
        point: &'static str,
    },
    /// A remote-executor call failed in transport or on the far side —
    /// connection refused, dropped mid-response, malformed reply, or a
    /// non-2xx status. Local simulation never produces this variant, so
    /// the resilience layer can recognize it and retry *without*
    /// perturbing the seed (the work itself never started).
    Remote {
        /// The executor address the call targeted.
        addr: String,
        /// What went wrong (transport error or server-reported message).
        context: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotPowerOfTwo { len } => {
                write!(f, "state length {len} is not a power of two")
            }
            SimError::ZeroNorm => write!(f, "state vector has zero norm"),
            SimError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {num_qubits}-qubit register"
                )
            }
            SimError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            SimError::NotUnitary { deviation } => {
                write!(f, "operator is not unitary (deviation {deviation:e})")
            }
            SimError::InvalidParameter { context } => {
                write!(f, "invalid parameter: {context}")
            }
            SimError::BudgetExceeded {
                requested_bytes,
                budget_bytes,
                context,
            } => write!(
                f,
                "memory budget exceeded: {context} needs {requested_bytes} bytes \
                 (budget {budget_bytes} bytes)"
            ),
            SimError::NormDrift { norm, context } => {
                write!(f, "state norm drifted to {norm} ({context})")
            }
            SimError::Injected { point } => {
                write!(f, "injected fault at {point}")
            }
            SimError::Remote { addr, context } => {
                write!(f, "remote executor {addr}: {context}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_works() {
        assert!(SimError::NotPowerOfTwo { len: 3 }.to_string().contains('3'));
        assert!(SimError::ZeroNorm.to_string().contains("zero norm"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
