//! Error types for the quantum simulator.

use std::error::Error;
use std::fmt;

/// Errors produced by the state-vector simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An amplitude vector's length is not a power of two.
    NotPowerOfTwo {
        /// The offending length.
        len: usize,
    },
    /// The state vector is (numerically) unnormalizable.
    ZeroNorm,
    /// A qubit index is outside the register.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The register size.
        num_qubits: usize,
    },
    /// A supplied matrix has the wrong dimensions for its targets.
    DimensionMismatch {
        /// Human-readable description.
        context: String,
    },
    /// The operator failed a unitarity check.
    NotUnitary {
        /// Measured deviation `‖U†U − I‖_max`.
        deviation: f64,
    },
    /// Invalid algorithm parameter (e.g. zero precision bits).
    InvalidParameter {
        /// Human-readable description.
        context: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotPowerOfTwo { len } => {
                write!(f, "state length {len} is not a power of two")
            }
            SimError::ZeroNorm => write!(f, "state vector has zero norm"),
            SimError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {num_qubits}-qubit register"
                )
            }
            SimError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            SimError::NotUnitary { deviation } => {
                write!(f, "operator is not unitary (deviation {deviation:e})")
            }
            SimError::InvalidParameter { context } => {
                write!(f, "invalid parameter: {context}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_works() {
        assert!(SimError::NotPowerOfTwo { len: 3 }.to_string().contains('3'));
        assert!(SimError::ZeroNorm.to_string().contains("zero norm"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
