//! Standard gate matrices.
//!
//! Single-qubit gates are returned as `[[Complex64; 2]; 2]` arrays (row
//! major) for cheap application; [`as_matrix`] lifts them to [`CMatrix`] for
//! tests and tensor constructions.

use qsc_linalg::{CMatrix, Complex64, C_I, C_ONE, C_ZERO};
use std::f64::consts::FRAC_1_SQRT_2;

/// A single-qubit gate as a 2×2 complex array.
pub type Gate1 = [[Complex64; 2]; 2];

/// Hadamard gate.
pub fn h() -> Gate1 {
    let s = Complex64::real(FRAC_1_SQRT_2);
    [[s, s], [s, -s]]
}

/// Pauli-X (NOT) gate.
pub fn x() -> Gate1 {
    [[C_ZERO, C_ONE], [C_ONE, C_ZERO]]
}

/// Pauli-Y gate.
pub fn y() -> Gate1 {
    [[C_ZERO, -C_I], [C_I, C_ZERO]]
}

/// Pauli-Z gate.
pub fn z() -> Gate1 {
    [[C_ONE, C_ZERO], [C_ZERO, -C_ONE]]
}

/// Phase gate S = diag(1, i).
pub fn s() -> Gate1 {
    [[C_ONE, C_ZERO], [C_ZERO, C_I]]
}

/// T gate = diag(1, e^{iπ/4}).
pub fn t() -> Gate1 {
    [
        [C_ONE, C_ZERO],
        [C_ZERO, Complex64::cis(std::f64::consts::FRAC_PI_4)],
    ]
}

/// General phase gate diag(1, e^{iθ}).
pub fn phase(theta: f64) -> Gate1 {
    [[C_ONE, C_ZERO], [C_ZERO, Complex64::cis(theta)]]
}

/// Rotation about X: `RX(θ) = exp(−iθX/2)`.
pub fn rx(theta: f64) -> Gate1 {
    let c = Complex64::real((theta / 2.0).cos());
    let s = Complex64::imag(-(theta / 2.0).sin());
    [[c, s], [s, c]]
}

/// Rotation about Y: `RY(θ) = exp(−iθY/2)`.
pub fn ry(theta: f64) -> Gate1 {
    let c = Complex64::real((theta / 2.0).cos());
    let s = (theta / 2.0).sin();
    [[c, Complex64::real(-s)], [Complex64::real(s), c]]
}

/// Rotation about Z: `RZ(θ) = exp(−iθZ/2)`.
pub fn rz(theta: f64) -> Gate1 {
    [
        [Complex64::cis(-theta / 2.0), C_ZERO],
        [C_ZERO, Complex64::cis(theta / 2.0)],
    ]
}

/// Lifts a single-qubit gate to a [`CMatrix`].
pub fn as_matrix(gate: &Gate1) -> CMatrix {
    CMatrix::from_rows(&[gate[0].to_vec(), gate[1].to_vec()]).expect("2×2 is well-formed")
}

/// Checks a gate for unitarity within `tol`.
pub fn is_unitary(gate: &Gate1, tol: f64) -> bool {
    as_matrix(gate).is_unitary(tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_standard_gates_unitary() {
        for (name, g) in [
            ("h", h()),
            ("x", x()),
            ("y", y()),
            ("z", z()),
            ("s", s()),
            ("t", t()),
            ("phase", phase(0.7)),
            ("rx", rx(1.1)),
            ("ry", ry(2.2)),
            ("rz", rz(0.3)),
        ] {
            assert!(is_unitary(&g, 1e-12), "{name} not unitary");
        }
    }

    #[test]
    fn pauli_algebra() {
        let xy = as_matrix(&x()).matmul(&as_matrix(&y()));
        let iz = as_matrix(&z()).scaled(C_I);
        assert!((&xy - &iz).max_norm() < 1e-12, "XY = iZ");
        let x2 = as_matrix(&x()).matmul(&as_matrix(&x()));
        assert!((&x2 - &CMatrix::identity(2)).max_norm() < 1e-12);
    }

    #[test]
    fn s_squared_is_z() {
        let s2 = as_matrix(&s()).matmul(&as_matrix(&s()));
        assert!((&s2 - &as_matrix(&z())).max_norm() < 1e-12);
    }

    #[test]
    fn t_squared_is_s() {
        let t2 = as_matrix(&t()).matmul(&as_matrix(&t()));
        assert!((&t2 - &as_matrix(&s())).max_norm() < 1e-12);
    }

    #[test]
    fn rz_two_pi_is_minus_identity() {
        let r = as_matrix(&rz(std::f64::consts::TAU));
        let neg_id = CMatrix::identity(2).scaled(-C_ONE);
        assert!((&r - &neg_id).max_norm() < 1e-12);
    }

    #[test]
    fn phase_zero_is_identity() {
        assert!((&as_matrix(&phase(0.0)) - &CMatrix::identity(2)).max_norm() < 1e-12);
    }
}
