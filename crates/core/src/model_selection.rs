//! Model selection: choosing `k` from the spectrum (eigengap heuristic)
//! and the dense-matrix Lanczos embedding stage of ablation A3.

use crate::embedding::{embed_rows, normalize_rows};
use crate::error::Error;
use crate::pipeline::{Embedder, Embedding, StageContext};
use qsc_graph::MixedGraph;
use qsc_linalg::lanczos::lanczos_lowest_k;
use qsc_linalg::CsrMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Estimates the informative **embedding dimension** from the eigengap of
/// a spectrum (ascending eigenvalues): returns the `k ∈ [k_min, k_max]`
/// maximizing `λ_{k+1} − λ_k`.
///
/// For ordinary (density-clustered) graphs this coincides with the number
/// of clusters — the classic eigengap heuristic. For *flow-defined*
/// clusters under the Hermitian encoding it can be **smaller** than the
/// cluster count: a single complex eigenvector encodes up to one cluster
/// per phase (e.g. a 3-cycle meta-flow fits in one eigenvector as phases
/// `1, ω, ω²`), so treat the result as the embedding dimension and choose
/// the cluster count separately.
///
/// # Panics
///
/// Panics if the range is empty or exceeds the spectrum length.
///
/// # Examples
///
/// ```
/// use qsc_core::model_selection::eigengap_k;
/// // Three tiny eigenvalues, then a jump: the gap sits after index 2.
/// let spectrum = [0.0, 0.01, 0.02, 0.9, 0.95, 1.0];
/// assert_eq!(eigengap_k(&spectrum, 2, 5), 3);
/// ```
pub fn eigengap_k(spectrum: &[f64], k_min: usize, k_max: usize) -> usize {
    assert!(k_min >= 1 && k_min <= k_max, "empty k range");
    assert!(k_max < spectrum.len(), "k_max exceeds spectrum length");
    let mut best_k = k_min;
    let mut best_gap = f64::NEG_INFINITY;
    for k in k_min..=k_max {
        let gap = spectrum[k] - spectrum[k - 1];
        if gap > best_gap {
            best_gap = gap;
            best_k = k;
        }
    }
    best_k
}

/// Dense-matrix Lanczos embedding stage (`O(m·n²)` instead of `O(n³)`) —
/// the "alternative classical algorithm" of the related-work discussion,
/// and ablation A3. Its cost proxy counts the Lanczos iterations, making
/// it the strong classical baseline the quantum speedup is judged against.
///
/// Produces the same embedding as [`DenseEig`](crate::DenseEig) up to
/// eigensolver tolerance; the outcome's `spectrum` only contains the `k`
/// computed eigenvalues. Prefer [`LanczosCsr`](crate::LanczosCsr) for
/// genuinely sparse graphs — this stage exists to measure the dense
/// `O(n²)`-per-matvec variant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LanczosDense;

impl Embedder for LanczosDense {
    fn name(&self) -> &'static str {
        "lanczos_dense"
    }

    fn embed(
        &self,
        _g: &MixedGraph,
        laplacian: &CsrMatrix,
        ctx: &StageContext,
    ) -> Result<Embedding, Error> {
        let dense = laplacian.to_dense();
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x1a2b_3c4d_5e6f_7788);
        let partial = lanczos_lowest_k(&dense, ctx.k, 1e-8, &mut rng)?;
        let selected: Vec<usize> = (0..ctx.k).collect();
        let mut rows = embed_rows(&partial.eigenvectors, &selected);
        if ctx.normalize_rows {
            normalize_rows(&mut rows);
        }
        Ok(Embedding {
            rows,
            selected_eigenvalues: partial.eigenvalues.clone(),
            spectrum: partial.eigenvalues,
            dims_used: ctx.k,
            lanczos_iterations: Some(partial.iterations),
        })
    }

    fn classical_cost(
        &self,
        n: usize,
        k: usize,
        cluster_iterations: usize,
        embedding: &Embedding,
    ) -> f64 {
        // Lanczos cost proxy: m iterations of an n² matvec +
        // reorthogonalization, then the clustering term.
        let n = n as f64;
        let m = embedding.lanczos_iterations.unwrap_or(0) as f64;
        m * n * n * 2.0 + n * (k as f64).powi(2) * cluster_iterations as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use qsc_cluster::metrics::matched_accuracy;
    use qsc_graph::generators::{dsbm, DsbmParams, MetaGraph};
    use qsc_graph::normalized_hermitian_laplacian;

    fn flow_instance(n: usize, k: usize, seed: u64) -> qsc_graph::generators::PlantedGraph {
        dsbm(&DsbmParams {
            n,
            k,
            p_intra: 0.25,
            p_inter: 0.25,
            eta_flow: 1.0,
            meta: MetaGraph::Cycle,
            seed,
            ..DsbmParams::default()
        })
        .unwrap()
    }

    #[test]
    fn eigengap_finds_planted_k_on_density_clusters() {
        // Classic regime: dense blocks, sparse in between.
        let inst = dsbm(&DsbmParams {
            n: 120,
            k: 3,
            p_intra: 0.4,
            p_inter: 0.05,
            eta_flow: 0.5,
            seed: 31,
            ..DsbmParams::default()
        })
        .unwrap();
        let l = normalized_hermitian_laplacian(&inst.graph, 0.25);
        let spectrum = qsc_linalg::eigvalsh(&l).unwrap();
        assert_eq!(eigengap_k(&spectrum, 2, 8), 3);
    }

    #[test]
    fn eigengap_compresses_cyclic_flow_into_one_dimension() {
        // The Hermitian phenomenon the docs describe: a 3-cycle meta-flow
        // fits in a single complex eigenvector (phases 1, ω, ω²), so the
        // dominant gap sits after k = 1.
        let inst = flow_instance(120, 3, 31);
        let l = normalized_hermitian_laplacian(&inst.graph, 0.25);
        let spectrum = qsc_linalg::eigvalsh(&l).unwrap();
        assert_eq!(eigengap_k(&spectrum, 1, 8), 1);
    }

    #[test]
    fn eigengap_respects_bounds() {
        let spectrum = [0.0, 0.5, 0.51, 0.52, 0.53];
        // The true gap is at k=1 but k_min forces ≥ 2.
        assert!(eigengap_k(&spectrum, 2, 4) >= 2);
    }

    #[test]
    fn lanczos_pipeline_matches_full_pipeline() {
        let inst = flow_instance(100, 3, 32);
        let full = Pipeline::hermitian(3).seed(4).run(&inst.graph).unwrap();
        let fast = Pipeline::hermitian(3)
            .seed(4)
            .embedder(LanczosDense)
            .run(&inst.graph)
            .unwrap();
        let acc_full = matched_accuracy(&inst.labels, &full.labels);
        let acc_fast = matched_accuracy(&inst.labels, &fast.labels);
        assert!(acc_fast > 0.9, "lanczos pipeline accuracy {acc_fast}");
        assert!((acc_full - acc_fast).abs() < 0.1);
        // Eigenvalues agree with the full decomposition.
        for (a, b) in fast
            .selected_eigenvalues
            .iter()
            .zip(&full.selected_eigenvalues)
        {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn lanczos_cost_proxy_below_cubic() {
        let inst = flow_instance(100, 3, 33);
        let full = Pipeline::hermitian(3).seed(1).run(&inst.graph).unwrap();
        let fast = Pipeline::hermitian(3)
            .seed(1)
            .embedder(LanczosDense)
            .run(&inst.graph)
            .unwrap();
        assert!(fast.diagnostics.classical_cost < full.diagnostics.classical_cost);
    }
}
