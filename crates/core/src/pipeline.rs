//! The composable staged pipeline: graph → Hermitian Laplacian → spectral
//! embedding → clustering, with every stage swappable and a rayon-parallel
//! batch runner.
//!
//! A [`Pipeline`] is built with the fluent builder and owns Laplacian
//! construction plus stage sequencing; the embedding stage is any
//! [`Embedder`] ([`DenseEig`](crate::DenseEig),
//! [`LanczosCsr`](crate::LanczosCsr), [`LanczosDense`](crate::LanczosDense),
//! or the quantum [`QpeTomography`](crate::QpeTomography)), and the
//! clustering stage is any [`Clusterer`]
//! ([`KMeans`] / [`QMeans`]).
//!
//! The quantum stages *compile then execute*: their circuits and
//! measurement statistics run on the pipeline's execution
//! [`Backend`] — [`Statevector`] (exact, the
//! default), `NoisyStatevector` (depolarizing + readout error) or
//! `ShotSampler` (finite-shot statistics) — selected with
//! [`Pipeline::backend`].
//!
//! For parameter sweeps, [`Pipeline::embed`] stages the expensive prefix
//! (Laplacian + embedding) once and [`Pipeline::cluster`] re-clusters it —
//! so e.g. a q-means `δ` sweep never recomputes its QPE inputs. For many
//! graphs, [`Pipeline::run_many`] (and
//! [`Pipeline::run_many_clusterers`]) fan instances out over the rayon
//! worker pool; every instance is computed independently from its own seed,
//! so batched results are identical to a sequential loop regardless of the
//! worker count.
//!
//! # Examples
//!
//! ```
//! use qsc_core::{KMeans, LanczosCsr, Pipeline};
//! use qsc_graph::generators::{dsbm, DsbmParams};
//!
//! # fn main() -> Result<(), qsc_core::Error> {
//! let inst = dsbm(&DsbmParams { n: 60, k: 3, seed: 2, ..DsbmParams::default() })?;
//! let out = Pipeline::hermitian(3)
//!     .embedder(LanczosCsr)
//!     .clusterer(KMeans)
//!     .seed(7)
//!     .run(&inst.graph)?;
//! assert_eq!(out.labels.len(), 60);
//! # Ok(())
//! # }
//! ```

use crate::config::QuantumParams;
use crate::config::{BackendConfig, ClusteringConfig, EmbeddingConfig, LaplacianConfig};
use crate::cost::{incidence_mu, quantum_cost, QuantumCostInputs};
use crate::embedding::eta_of_embedding;
use crate::error::Error;
use crate::outcome::{ClusteringOutcome, Diagnostics};
use crate::resilience::{BatchOutcome, FailureKind, InstanceError, ResiliencePolicy};
use qsc_cluster::{Clusterer, KMeans, KMeansConfig, QMeans};
use qsc_graph::{normalized_hermitian_laplacian_csr, MixedGraph};
use qsc_linalg::params::condition_number_from_eigenvalues;
use qsc_linalg::CsrMatrix;
use qsc_sim::backend::{Backend, Statevector};
use qsc_sim::SimError;
use rayon::prelude::*;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tolerance below which an eigenvalue counts as zero for κ purposes.
pub(crate) const ZERO_EIG_TOL: f64 = 1e-9;

pub(crate) fn validate_request(g: &MixedGraph, k: usize) -> Result<(), Error> {
    if k == 0 {
        return Err(Error::InvalidRequest {
            context: "k must be positive".into(),
        });
    }
    if g.num_vertices() < k.max(2) {
        return Err(Error::InvalidRequest {
            context: format!(
                "graph with {} vertices cannot be split into {} clusters",
                g.num_vertices(),
                k
            ),
        });
    }
    Ok(())
}

/// Per-run inputs handed to every stage implementation.
#[derive(Clone)]
pub struct StageContext {
    /// Number of clusters `k`.
    pub k: usize,
    /// Effective master seed of this run (pipeline seed or the per-instance
    /// override from [`GraphInstance`]).
    pub seed: u64,
    /// Row-normalize the embedding before clustering.
    pub normalize_rows: bool,
    /// Execution backend the stage's quantum subroutines run on.
    pub backend: Arc<dyn Backend>,
    /// Per-allocation state-memory budget (bytes) from the pipeline's
    /// [`ResiliencePolicy`]; `None` = the global budget of
    /// [`qsc_sim::budget`].
    pub state_budget_bytes: Option<u64>,
}

impl fmt::Debug for StageContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StageContext")
            .field("k", &self.k)
            .field("seed", &self.seed)
            .field("normalize_rows", &self.normalize_rows)
            .field("backend", &self.backend.name())
            .field("state_budget_bytes", &self.state_budget_bytes)
            .finish()
    }
}

/// Output of the embedding stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    /// Real feature rows handed to the clusterer (dimension `2·dims_used`).
    pub rows: Vec<Vec<f64>>,
    /// Every eigenvalue the stage computed, ascending (full spectrum for
    /// dense solvers, the `k` lowest for partial ones).
    pub spectrum: Vec<f64>,
    /// Eigenvalues of the selected (projected) subspace.
    pub selected_eigenvalues: Vec<f64>,
    /// Spectral dimensions used (can exceed `k` when QPE bins collide).
    pub dims_used: usize,
    /// Lanczos iterations, for embedders whose cost proxy counts them.
    pub lanczos_iterations: Option<usize>,
}

/// A spectral-embedding stage: Laplacian (+ graph) → feature rows.
///
/// Implementations: [`DenseEig`](crate::DenseEig) (exact reference),
/// [`LanczosCsr`](crate::LanczosCsr) (sparse partial eigensolver),
/// [`LanczosDense`](crate::LanczosDense) (the ablation-A3 dense Lanczos)
/// and [`QpeTomography`](crate::QpeTomography) (the simulated quantum
/// path: QPE-binned projection + amplitude estimation + tomography).
pub trait Embedder: Send + Sync {
    /// Stage name used in reports and displays.
    fn name(&self) -> &'static str;

    /// Computes the spectral embedding of `g` from its normalized Hermitian
    /// Laplacian.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] for inconsistent stage parameters or substrate
    /// failures.
    fn embed(
        &self,
        g: &MixedGraph,
        laplacian: &CsrMatrix,
        ctx: &StageContext,
    ) -> Result<Embedding, Error>;

    /// The quantum precision parameters, when this embedder simulates the
    /// quantum path — drives the query-cost model in the diagnostics.
    fn quantum_params(&self) -> Option<&QuantumParams> {
        None
    }

    /// Classical cost proxy of a run that used this embedder (flops).
    fn classical_cost(
        &self,
        n: usize,
        k: usize,
        cluster_iterations: usize,
        embedding: &Embedding,
    ) -> f64 {
        let _ = embedding;
        crate::cost::classical_cost(n, k, cluster_iterations)
    }
}

/// The staged (cached) prefix of a run: Laplacian-derived measurements plus
/// the spectral embedding, ready to be re-clustered any number of times.
///
/// Produced by [`Pipeline::embed`]; consumed by [`Pipeline::cluster`].
#[derive(Debug, Clone, PartialEq)]
pub struct StagedEmbedding {
    /// The embedding-stage output.
    pub embedding: Embedding,
    /// `k` the staging pipeline was configured for.
    pub k: usize,
    /// Name of the embedder stage that produced this embedding —
    /// [`Pipeline::cluster`] refuses a staged embedding from a different
    /// stage, whose cost model and dimensions would not apply.
    pub embedder: &'static str,
    /// Row-norm spread `η` of the embedding.
    pub eta: f64,
    /// Condition number of the selected eigenvalues.
    pub kappa: f64,
    /// `μ(B)` of the (possibly symmetrized) graph's incidence matrix.
    pub mu_b: f64,
    /// Quantum query-cost proxy (`None` for classical embedders).
    pub quantum_cost: Option<f64>,
    /// Number of vertices.
    pub n: usize,
    /// Wall-clock seconds spent staging (Laplacian + embedding).
    pub embed_seconds: f64,
}

/// One graph of a batch, with an optional per-instance seed override.
///
/// Borrowed, so building a batch never copies graphs:
///
/// ```
/// use qsc_core::{GraphInstance, Pipeline};
/// use qsc_graph::generators::{dsbm, DsbmParams};
///
/// # fn main() -> Result<(), qsc_core::Error> {
/// let graphs: Vec<_> = (0..3)
///     .map(|s| dsbm(&DsbmParams { n: 40, k: 2, seed: s, ..DsbmParams::default() }))
///     .collect::<Result<_, _>>()?;
/// let batch: Vec<GraphInstance> = graphs
///     .iter()
///     .enumerate()
///     .map(|(i, inst)| GraphInstance::with_seed(&inst.graph, i as u64))
///     .collect();
/// let outs = Pipeline::hermitian(2).run_many(&batch)?;
/// assert_eq!(outs.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GraphInstance<'g> {
    /// The graph to cluster.
    pub graph: &'g MixedGraph,
    /// Seed for this instance (`None` → the pipeline's seed).
    pub seed: Option<u64>,
}

impl<'g> GraphInstance<'g> {
    /// An instance clustered under the pipeline's own seed.
    pub fn new(graph: &'g MixedGraph) -> Self {
        Self { graph, seed: None }
    }

    /// An instance with its own master seed.
    pub fn with_seed(graph: &'g MixedGraph, seed: u64) -> Self {
        Self {
            graph,
            seed: Some(seed),
        }
    }
}

impl<'g> From<&'g MixedGraph> for GraphInstance<'g> {
    fn from(graph: &'g MixedGraph) -> Self {
        Self::new(graph)
    }
}

/// The staged spectral-clustering pipeline.
///
/// Construction starts from [`Pipeline::hermitian`] (or
/// [`Pipeline::symmetrized`] for the direction-blind baseline), followed by
/// builder calls; the configured pipeline is immutable and cheap to clone
/// (stages are shared through `Arc`), so variants for a sweep are one
/// `.clone().clusterer(...)` away.
#[derive(Clone)]
pub struct Pipeline {
    laplacian: LaplacianConfig,
    embedding: EmbeddingConfig,
    clustering: ClusteringConfig,
    seed: u64,
    embedder: Arc<dyn Embedder>,
    clusterer: Arc<dyn Clusterer>,
    backend: Arc<dyn Backend>,
    resilience: ResiliencePolicy,
    fallback_backends: Vec<Arc<dyn Backend>>,
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("laplacian", &self.laplacian)
            .field("embedding", &self.embedding)
            .field("clustering", &self.clustering)
            .field("seed", &self.seed)
            .field("embedder", &self.embedder.name())
            .field("clusterer", &self.clusterer.name())
            .field("backend", &self.backend.name())
            .field("resilience", &self.resilience)
            .finish()
    }
}

impl Pipeline {
    /// A Hermitian pipeline for `k` clusters with the reference stages:
    /// `q = `[`Q_CLASSICAL`](qsc_graph::Q_CLASSICAL), dense exact
    /// eigensolver, classical k-means, seed 0.
    pub fn hermitian(k: usize) -> Self {
        Self {
            laplacian: LaplacianConfig::default(),
            embedding: EmbeddingConfig {
                k,
                ..EmbeddingConfig::default()
            },
            clustering: ClusteringConfig::default(),
            seed: 0,
            embedder: Arc::new(crate::classical::DenseEig),
            clusterer: Arc::new(KMeans),
            backend: Arc::new(Statevector::new()),
            resilience: ResiliencePolicy::default(),
            fallback_backends: Vec::new(),
        }
    }

    /// The direction-blind baseline for `k` clusters: the graph is
    /// symmetrized (arcs become edges) and encoded with `q = 0`.
    pub fn symmetrized(k: usize) -> Self {
        Self {
            laplacian: LaplacianConfig {
                q: 0.0,
                symmetrize: true,
            },
            ..Self::hermitian(k)
        }
    }

    /// Sets the rotation parameter `q`.
    pub fn q(mut self, q: f64) -> Self {
        self.laplacian.q = q;
        self
    }

    /// Symmetrizes the graph before building the Laplacian (and forces
    /// `q = 0`, under which the Hermitian encoding is direction-blind).
    pub fn symmetrize(mut self) -> Self {
        self.laplacian.q = 0.0;
        self.laplacian.symmetrize = true;
        self
    }

    /// Sets the master seed of every random stream in the run.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Row-normalizes the embedding (Ng–Jordan–Weiss) before clustering.
    pub fn normalize_rows(mut self, yes: bool) -> Self {
        self.embedding.normalize_rows = yes;
        self
    }

    /// Sets the clustering restart count.
    pub fn restarts(mut self, restarts: usize) -> Self {
        self.clustering.restarts = restarts;
        self
    }

    /// Sets the clustering iteration budget per restart.
    pub fn max_iter(mut self, max_iter: usize) -> Self {
        self.clustering.max_iter = max_iter;
        self
    }

    /// Swaps in an embedding stage.
    pub fn embedder(mut self, embedder: impl Embedder + 'static) -> Self {
        self.embedder = Arc::new(embedder);
        self
    }

    /// Swaps in a clustering stage.
    pub fn clusterer(mut self, clusterer: impl Clusterer + 'static) -> Self {
        self.clusterer = Arc::new(clusterer);
        self
    }

    /// Swaps in the execution backend the quantum stages run on
    /// ([`Statevector`] by default; see
    /// [`ShardedStatevector`](qsc_sim::shard::ShardedStatevector),
    /// [`NoisyStatevector`](qsc_sim::backend::NoisyStatevector),
    /// [`DensityMatrix`](qsc_sim::density::DensityMatrix) and
    /// [`ShotSampler`](qsc_sim::backend::ShotSampler), and the selection
    /// guide in `docs/BACKENDS.md`). The backend drives
    /// the QPE outcome statistics of
    /// [`QpeTomography`](crate::QpeTomography) and the distance-estimation
    /// statistics of [`QMeans`]; classical stages ignore it.
    pub fn backend(mut self, backend: impl Backend + 'static) -> Self {
        self.backend = Arc::new(backend);
        self
    }

    /// Like [`Pipeline::backend`] but sharing an existing backend (and its
    /// state-buffer pool) across pipelines.
    pub fn backend_shared(mut self, backend: Arc<dyn Backend>) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the backend from its serializable [`BackendConfig`] form.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRequest`] for out-of-range backend
    /// parameters (deserialized configs arrive unvalidated).
    pub fn backend_config(self, config: &BackendConfig) -> Result<Self, Error> {
        Ok(self.backend_shared(config.build()?))
    }

    /// Attaches a fault-tolerance policy: retries, a per-instance
    /// wall-clock deadline, a state-memory budget, a backend fallback
    /// chain, and (for chaos testing) a deterministic fault-injection
    /// plan.
    ///
    /// The policy only drives the **isolated** batch runners
    /// ([`Pipeline::run_many_isolated`] /
    /// [`Pipeline::run_many_clusterers_isolated`]), plus the
    /// `state_budget_bytes` cap which every quantum stage honors through
    /// [`StageContext`]. The plain runners ([`Pipeline::run`],
    /// [`Pipeline::run_many`]) behave exactly as without a policy.
    ///
    /// Fallback backends are built eagerly here, so a malformed fallback
    /// config fails at build time, not mid-sweep.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRequest`] for out-of-range fallback backend
    /// parameters (same contract as [`Pipeline::backend_config`]).
    pub fn resilience(mut self, policy: ResiliencePolicy) -> Result<Self, Error> {
        self.fallback_backends = policy
            .fallbacks
            .iter()
            .map(|config| config.build())
            .collect::<Result<_, _>>()?;
        self.resilience = policy;
        Ok(self)
    }

    /// The attached fault-tolerance policy (default when none was set).
    pub fn resilience_policy(&self) -> &ResiliencePolicy {
        &self.resilience
    }

    /// Configures the simulated quantum path in one call:
    /// [`QpeTomography`](crate::QpeTomography) embedding plus
    /// [`QMeans`] clustering at the parameter set's
    /// `δ`.
    pub fn quantum(self, params: &QuantumParams) -> Self {
        let delta = params.delta;
        self.embedder(crate::quantum::QpeTomography::new(params.clone()))
            .clusterer(QMeans::new(delta))
    }

    /// Number of clusters `k` this pipeline produces.
    pub fn k(&self) -> usize {
        self.embedding.k
    }

    /// Stage names, for reports: `(embedder, clusterer)`.
    pub fn stage_names(&self) -> (&'static str, &'static str) {
        (self.embedder.name(), self.clusterer.name())
    }

    /// Name of the execution backend.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    fn context(&self, seed: u64) -> StageContext {
        StageContext {
            k: self.embedding.k,
            seed,
            normalize_rows: self.embedding.normalize_rows,
            backend: self.backend.clone(),
            state_budget_bytes: self.resilience.state_budget_bytes,
        }
    }

    fn embed_seeded(&self, g: &MixedGraph, seed: u64) -> Result<StagedEmbedding, Error> {
        validate_request(g, self.embedding.k)?;
        let start = Instant::now();
        let symmetrized;
        let g_eff = if self.laplacian.symmetrize {
            symmetrized = g.symmetrized();
            &symmetrized
        } else {
            g
        };
        let laplacian = normalized_hermitian_laplacian_csr(g_eff, self.laplacian.q);
        let embedding = self
            .embedder
            .embed(g_eff, &laplacian, &self.context(seed))?;
        // Numerical guard: a NaN/∞ row would silently poison η, κ and the
        // clustering distances downstream — fail here with a typed error.
        for (i, row) in embedding.rows.iter().enumerate() {
            if row.iter().any(|x| !x.is_finite()) {
                return Err(Error::NonFinite {
                    context: format!(
                        "embedding row {i} from the `{}` stage",
                        self.embedder.name()
                    ),
                });
            }
        }
        let eta = eta_of_embedding(&embedding.rows);
        let kappa =
            condition_number_from_eigenvalues(&embedding.selected_eigenvalues, ZERO_EIG_TOL);
        let mu_b = incidence_mu(g_eff);
        let n = g_eff.num_vertices();
        let quantum = self.embedder.quantum_params().map(|params| {
            quantum_cost(
                &QuantumCostInputs {
                    n,
                    k_selected: embedding.dims_used,
                    mu_b,
                    kappa,
                    eta_embedding: eta,
                },
                params,
            )
        });
        Ok(StagedEmbedding {
            embedding,
            k: self.embedding.k,
            embedder: self.embedder.name(),
            eta,
            kappa,
            mu_b,
            quantum_cost: quantum,
            n,
            embed_seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// Runs the staged prefix only: Laplacian construction plus the
    /// embedding stage. The result can be handed to [`Pipeline::cluster`]
    /// repeatedly — the idiom for sweeping clusterers (e.g. q-means `δ`)
    /// without recomputing the embedding.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRequest`] for inconsistent requests and
    /// propagates stage failures.
    pub fn embed(&self, g: &MixedGraph) -> Result<StagedEmbedding, Error> {
        self.embed_seeded(g, self.seed)
    }

    /// Clusters a staged embedding with this pipeline's clustering stage,
    /// assembling the full [`ClusteringOutcome`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRequest`] when `staged` came from a
    /// pipeline with a different `k` or embedder stage (its dimensions and
    /// cost model would not apply here), and propagates clustering
    /// failures.
    pub fn cluster(&self, staged: &StagedEmbedding) -> Result<ClusteringOutcome, Error> {
        self.cluster_seeded(staged, self.seed)
    }

    fn cluster_seeded(
        &self,
        staged: &StagedEmbedding,
        seed: u64,
    ) -> Result<ClusteringOutcome, Error> {
        if staged.k != self.embedding.k || staged.embedder != self.embedder.name() {
            return Err(Error::InvalidRequest {
                context: format!(
                    "staged embedding (k = {}, embedder {}) is incompatible with \
                     this pipeline (k = {}, embedder {})",
                    staged.k,
                    staged.embedder,
                    self.embedding.k,
                    self.embedder.name()
                ),
            });
        }
        let start = Instant::now();
        let k = self.embedding.k;
        let result = self.clusterer.cluster_with_backend(
            &staged.embedding.rows,
            &KMeansConfig {
                k,
                max_iter: self.clustering.max_iter,
                tol: self.clustering.tol,
                restarts: self.clustering.restarts,
                seed,
            },
            self.backend.as_ref(),
        )?;
        let classical_cost =
            self.embedder
                .classical_cost(staged.n, k, result.iterations, &staged.embedding);
        Ok(ClusteringOutcome {
            labels: result.labels,
            embedding: staged.embedding.rows.clone(),
            selected_eigenvalues: staged.embedding.selected_eigenvalues.clone(),
            diagnostics: Diagnostics {
                kappa: staged.kappa,
                mu_b: staged.mu_b,
                eta_embedding: staged.eta,
                classical_cost,
                quantum_cost: staged.quantum_cost,
                kmeans_iterations: result.iterations,
                dims_used: staged.embedding.dims_used,
                wall_seconds: staged.embed_seconds + start.elapsed().as_secs_f64(),
            },
            spectrum: staged.embedding.spectrum.clone(),
        })
    }

    fn run_seeded(&self, g: &MixedGraph, seed: u64) -> Result<ClusteringOutcome, Error> {
        let staged = self.embed_seeded(g, seed)?;
        self.cluster_seeded(&staged, seed)
    }

    /// Runs the full pipeline on one graph.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRequest`] for inconsistent requests and
    /// propagates stage failures.
    pub fn run(&self, g: &MixedGraph) -> Result<ClusteringOutcome, Error> {
        self.run_seeded(g, self.seed)
    }

    /// Runs the pipeline on a batch of graphs, rayon-parallel over
    /// instances. Results are in instance order and — because every
    /// instance is computed independently from its own seed over
    /// thread-count-independent kernels — identical to a sequential
    /// [`Pipeline::run`] loop.
    ///
    /// # Errors
    ///
    /// Returns the first instance error in batch order, if any.
    pub fn run_many(
        &self,
        instances: &[GraphInstance<'_>],
    ) -> Result<Vec<ClusteringOutcome>, Error> {
        // Ordered parallel collection via an indexed slot vector: the rayon
        // compat shim only exposes the par_chunks(_mut) surface (no
        // par_iter), and this shape is also valid under real rayon, keeping
        // the planned shim→rayon swap a pure dependency change.
        let mut slots: Vec<Option<Result<ClusteringOutcome, Error>>> =
            (0..instances.len()).map(|_| None).collect();
        slots.par_chunks_mut(1).enumerate().for_each(|(i, slot)| {
            let inst = &instances[i];
            slot[0] = Some(self.run_seeded(inst.graph, inst.seed.unwrap_or(self.seed)));
        });
        slots
            .into_iter()
            // Every slot was written by the parallel loop above.
            .map(|slot| slot.expect("batch slot filled"))
            .collect()
    }

    /// Batch runner for clusterer sweeps: every instance's Laplacian and
    /// embedding are computed **once**, then re-clustered with each stage
    /// in `clusterers`. Parallel over instances; the result is indexed
    /// `[instance][clusterer]`.
    ///
    /// # Errors
    ///
    /// Returns the first error in `(instance, clusterer)` order, if any.
    pub fn run_many_clusterers(
        &self,
        instances: &[GraphInstance<'_>],
        clusterers: &[Arc<dyn Clusterer>],
    ) -> Result<Vec<Vec<ClusteringOutcome>>, Error> {
        let mut slots: Vec<Option<Result<Vec<ClusteringOutcome>, Error>>> =
            (0..instances.len()).map(|_| None).collect();
        slots.par_chunks_mut(1).enumerate().for_each(|(i, slot)| {
            let inst = &instances[i];
            let seed = inst.seed.unwrap_or(self.seed);
            let per_instance = self.embed_seeded(inst.graph, seed).and_then(|staged| {
                clusterers
                    .iter()
                    .map(|c| {
                        self.clone()
                            .clusterer_arc(c.clone())
                            .cluster_seeded(&staged, seed)
                    })
                    .collect()
            });
            slot[0] = Some(per_instance);
        });
        slots
            .into_iter()
            // Every slot was written by the parallel loop above.
            .map(|slot| slot.expect("batch slot filled"))
            .collect()
    }

    fn clusterer_arc(mut self, clusterer: Arc<dyn Clusterer>) -> Self {
        self.clusterer = clusterer;
        self
    }

    // --- Fault-isolated execution (see docs/RESILIENCE.md) ---------------

    /// Seed of retry attempt `attempt` (attempt 0 keeps the original seed,
    /// so a first-try success is bit-identical to the plain runners).
    fn attempt_seed(seed: u64, attempt: usize) -> u64 {
        seed.wrapping_add((attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    fn with_backend_arc(&self, backend: Arc<dyn Backend>) -> Self {
        let mut pl = self.clone();
        pl.backend = backend;
        pl
    }

    /// Runs `work` inside this pipeline's fault-injection scope (when the
    /// policy carries an active plan); the scope key is the attempt seed,
    /// so decisions are independent of worker count and retry attempts
    /// re-roll them deterministically.
    fn run_with_faults<T>(
        &self,
        seed: u64,
        work: &(dyn Fn(&Pipeline, u64) -> Result<T, Error> + Sync),
    ) -> Result<T, Error> {
        match self.resilience.fault_plan {
            Some(plan) if plan.is_active() => qsc_fault::scope(plan, seed, || {
                if qsc_fault::should_fire(qsc_fault::FaultPoint::TaskStart) {
                    panic!("injected fault at task_start");
                }
                work(self, seed)
            }),
            _ => work(self, seed),
        }
    }

    /// One instance under the full resilience policy: panic isolation,
    /// seed-perturbed retries, wall-clock deadline, and backend fallback
    /// on budget failures.
    fn guarded<T>(
        &self,
        seed: u64,
        work: &(dyn Fn(&Pipeline, u64) -> Result<T, Error> + Sync),
    ) -> Result<T, InstanceError> {
        let deadline = self.resilience.deadline_ms.map(Duration::from_millis);
        let start = Instant::now();
        let mut fallbacks = self.fallback_backends.iter();
        let mut retries_left = self.resilience.retries;
        let mut attempts = 0usize;
        // Attempts that actually *started* the work — transport failures
        // (the remote executor was unreachable; nothing ran) do not count,
        // so a remote retry keeps the unperturbed seed and stays
        // bit-identical to a first-try local run.
        let mut seed_attempts = 0usize;
        // `None` = run on `self`; set when a budget or transport failure
        // degrades to a fallback backend.
        let mut current: Option<Pipeline> = None;
        loop {
            let pl = current.as_ref().unwrap_or(self);
            let attempt_seed = Self::attempt_seed(seed, seed_attempts);
            attempts += 1;
            // catch_unwind pre-empts the worker pool's panic trap, so one
            // panicking instance cannot poison the batch. AssertUnwindSafe
            // is sound here: `pl` and `work` are only read again after a
            // full fresh attempt, never resumed mid-state.
            let outcome = catch_unwind(AssertUnwindSafe(|| pl.run_with_faults(attempt_seed, work)));
            let (failure, transport) = match outcome {
                Ok(Ok(value)) => return Ok(value),
                Ok(Err(e)) => {
                    let transport = matches!(e, Error::Sim(SimError::Remote { .. }));
                    (
                        InstanceError {
                            kind: FailureKind::classify(&e),
                            message: e.to_string(),
                            attempts,
                        },
                        transport,
                    )
                }
                Err(payload) => (
                    InstanceError {
                        kind: FailureKind::Panic,
                        message: panic_message(payload.as_ref()),
                        attempts,
                    },
                    false,
                ),
            };
            if !transport {
                seed_attempts += 1;
            }
            // An inconsistent request fails identically on every attempt
            // and every backend: no retry, no fallback.
            if failure.kind == FailureKind::Invalid {
                return Err(failure);
            }
            if let Some(limit) = deadline {
                if start.elapsed() >= limit {
                    // An unreachable executor burns wall-clock without the
                    // work ever starting; when a fallback backend remains,
                    // degrade to it immediately (no further retries against
                    // the dead host) rather than charging the instance with
                    // the deadline.
                    if transport {
                        if let Some(backend) = fallbacks.next() {
                            current = Some(self.with_backend_arc(backend.clone()));
                            continue;
                        }
                    }
                    return Err(InstanceError {
                        kind: FailureKind::Deadline,
                        message: format!(
                            "wall-clock deadline of {} ms passed; last failure: {}",
                            limit.as_millis(),
                            failure.message
                        ),
                        attempts,
                    });
                }
            }
            // Budget failures degrade immediately (retrying the same
            // backend cannot shrink the state); transport failures retry
            // the same executor first, then degrade down the chain.
            if failure.kind == FailureKind::Budget || (transport && retries_left == 0) {
                // Switching backends does not consume a retry.
                match fallbacks.next() {
                    Some(backend) => {
                        current = Some(self.with_backend_arc(backend.clone()));
                        continue;
                    }
                    None => return Err(failure),
                }
            }
            if retries_left == 0 {
                return Err(failure);
            }
            retries_left -= 1;
        }
    }

    /// Fault-isolated batch runner: like [`Pipeline::run_many`], but a
    /// failing instance — typed error *or panic* — becomes its own
    /// [`InstanceError`] entry instead of failing (or poisoning) the whole
    /// batch, and the attached [`ResiliencePolicy`] grants retries,
    /// deadlines and backend fallbacks per instance.
    ///
    /// When nothing fails the outcomes are bit-identical to
    /// [`Pipeline::run_many`] (attempt 0 uses the unperturbed seed).
    pub fn run_many_isolated(
        &self,
        instances: &[GraphInstance<'_>],
    ) -> BatchOutcome<ClusteringOutcome> {
        let mut slots: Vec<Option<Result<ClusteringOutcome, InstanceError>>> =
            (0..instances.len()).map(|_| None).collect();
        slots.par_chunks_mut(1).enumerate().for_each(|(i, slot)| {
            let inst = &instances[i];
            let seed = inst.seed.unwrap_or(self.seed);
            slot[0] = Some(self.guarded(seed, &|pl: &Pipeline, s| pl.run_seeded(inst.graph, s)));
        });
        slots
            .into_iter()
            // Every slot was written by the parallel loop above.
            .map(|slot| slot.expect("batch slot filled"))
            .collect()
    }

    /// Fault-isolated counterpart of [`Pipeline::run_many_clusterers`]:
    /// each instance's staged embedding plus *all* its clusterer variants
    /// run under one guard, so a failure anywhere marks that instance
    /// failed (the variants share the embedding, hence its fate).
    pub fn run_many_clusterers_isolated(
        &self,
        instances: &[GraphInstance<'_>],
        clusterers: &[Arc<dyn Clusterer>],
    ) -> BatchOutcome<Vec<ClusteringOutcome>> {
        let mut slots: Vec<Option<Result<Vec<ClusteringOutcome>, InstanceError>>> =
            (0..instances.len()).map(|_| None).collect();
        slots.par_chunks_mut(1).enumerate().for_each(|(i, slot)| {
            let inst = &instances[i];
            let seed = inst.seed.unwrap_or(self.seed);
            slot[0] = Some(self.guarded(seed, &|pl: &Pipeline, s| {
                let staged = pl.embed_seeded(inst.graph, s)?;
                clusterers
                    .iter()
                    .map(|c| {
                        pl.clone()
                            .clusterer_arc(c.clone())
                            .cluster_seeded(&staged, s)
                    })
                    .collect()
            }));
        });
        slots
            .into_iter()
            // Every slot was written by the parallel loop above.
            .map(|slot| slot.expect("batch slot filled"))
            .collect()
    }
}

/// Human-readable form of a caught panic payload (panics carry `&str` or
/// `String` in practice; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsc_cluster::metrics::matched_accuracy;
    use qsc_graph::generators::{dsbm, DsbmParams, MetaGraph};

    fn flow_instance(n: usize, seed: u64) -> qsc_graph::generators::PlantedGraph {
        dsbm(&DsbmParams {
            n,
            k: 3,
            p_intra: 0.25,
            p_inter: 0.25,
            eta_flow: 1.0,
            meta: MetaGraph::Cycle,
            seed,
            ..DsbmParams::default()
        })
        .unwrap()
    }

    #[test]
    fn builder_runs_end_to_end() {
        let inst = flow_instance(90, 11);
        let out = Pipeline::hermitian(3).seed(4).run(&inst.graph).unwrap();
        let acc = matched_accuracy(&inst.labels, &out.labels);
        assert!(acc > 0.9, "accuracy {acc}");
        assert_eq!(out.diagnostics.dims_used, 3);
        assert!(out.diagnostics.quantum_cost.is_none());
    }

    #[test]
    fn symmetrized_baseline_is_direction_blind() {
        let inst = flow_instance(120, 12);
        let herm = Pipeline::hermitian(3).seed(4).run(&inst.graph).unwrap();
        let blind = Pipeline::symmetrized(3).seed(4).run(&inst.graph).unwrap();
        let acc_h = matched_accuracy(&inst.labels, &herm.labels);
        let acc_b = matched_accuracy(&inst.labels, &blind.labels);
        assert!(acc_h > acc_b + 0.2, "hermitian {acc_h} vs blind {acc_b}");
    }

    #[test]
    fn staged_embedding_reclusters_without_reembedding() {
        let inst = flow_instance(60, 13);
        let pl = Pipeline::hermitian(3)
            .seed(9)
            .quantum(&QuantumParams::default());
        let staged = pl.embed(&inst.graph).unwrap();
        // Sweeping δ over the same staged embedding must match full runs.
        for delta in [0.05, 0.5] {
            let swept = pl
                .clone()
                .clusterer(QMeans::new(delta))
                .cluster(&staged)
                .unwrap();
            let full = pl
                .clone()
                .clusterer(QMeans::new(delta))
                .run(&inst.graph)
                .unwrap();
            assert_eq!(swept.labels, full.labels);
            assert_eq!(swept.embedding, full.embedding);
        }
    }

    #[test]
    fn run_many_matches_sequential_loop() {
        let graphs: Vec<_> = (0..4).map(|s| flow_instance(50, 20 + s)).collect();
        let batch: Vec<GraphInstance> = graphs
            .iter()
            .enumerate()
            .map(|(i, inst)| GraphInstance::with_seed(&inst.graph, i as u64))
            .collect();
        let pl = Pipeline::hermitian(3);
        let batched = pl.run_many(&batch).unwrap();
        for (i, inst) in graphs.iter().enumerate() {
            let single = pl.clone().seed(i as u64).run(&inst.graph).unwrap();
            assert_eq!(batched[i].labels, single.labels);
            assert_eq!(batched[i].spectrum, single.spectrum);
        }
    }

    #[test]
    fn run_many_clusterers_shares_the_embedding() {
        let graphs: Vec<_> = (0..2).map(|s| flow_instance(50, 30 + s)).collect();
        let batch: Vec<GraphInstance> = graphs
            .iter()
            .map(|inst| GraphInstance::new(&inst.graph))
            .collect();
        let pl = Pipeline::hermitian(3)
            .seed(5)
            .quantum(&QuantumParams::default());
        let deltas: Vec<Arc<dyn Clusterer>> =
            vec![Arc::new(QMeans::new(0.05)), Arc::new(QMeans::new(0.5))];
        let outs = pl.run_many_clusterers(&batch, &deltas).unwrap();
        assert_eq!(outs.len(), 2);
        for per_instance in &outs {
            assert_eq!(per_instance.len(), 2);
            // Same staged embedding behind both outcomes.
            assert_eq!(per_instance[0].embedding, per_instance[1].embedding);
        }
        // And each outcome matches its own full run.
        for (i, inst) in graphs.iter().enumerate() {
            let full = pl
                .clone()
                .clusterer(QMeans::new(0.5))
                .run(&inst.graph)
                .unwrap();
            assert_eq!(outs[i][1].labels, full.labels);
        }
    }

    #[test]
    fn rejects_bad_requests() {
        let g = MixedGraph::new(3);
        assert!(Pipeline::hermitian(0).run(&g).is_err());
        assert!(Pipeline::hermitian(5).run(&g).is_err());
    }

    #[test]
    fn cluster_rejects_mismatched_staged_embedding() {
        let inst = flow_instance(50, 14);
        let from_lanczos = Pipeline::hermitian(3)
            .embedder(crate::model_selection::LanczosDense)
            .embed(&inst.graph)
            .unwrap();
        // Different embedder: the DenseEig cost model would not apply.
        assert!(Pipeline::hermitian(3).cluster(&from_lanczos).is_err());
        // Different k: labels would contradict the staged dimensions.
        let staged = Pipeline::hermitian(3).embed(&inst.graph).unwrap();
        assert!(Pipeline::hermitian(4).cluster(&staged).is_err());
        // Same recipe (clusterer swaps allowed): fine.
        assert!(Pipeline::hermitian(3)
            .clusterer(QMeans::new(0.1))
            .cluster(&staged)
            .is_ok());
    }

    #[test]
    fn debug_names_the_stages() {
        let pl = Pipeline::hermitian(3).quantum(&QuantumParams::default());
        let dbg = format!("{pl:?}");
        assert!(dbg.contains("qpe_tomography"), "{dbg}");
        assert!(dbg.contains("qmeans"), "{dbg}");
        assert!(dbg.contains("statevector"), "{dbg}");
    }

    #[test]
    fn default_backend_is_explicit_statevector() {
        use qsc_sim::backend::Statevector;
        let inst = flow_instance(60, 15);
        let params = QuantumParams::default();
        let implicit = Pipeline::hermitian(3)
            .seed(2)
            .quantum(&params)
            .run(&inst.graph)
            .unwrap();
        let explicit = Pipeline::hermitian(3)
            .seed(2)
            .quantum(&params)
            .backend(Statevector::new())
            .run(&inst.graph)
            .unwrap();
        assert_eq!(implicit.labels, explicit.labels);
        assert_eq!(implicit.embedding, explicit.embedding);
        assert_eq!(implicit.spectrum, explicit.spectrum);
    }

    #[test]
    fn shot_backend_is_deterministic_and_degrades_gracefully() {
        use qsc_cluster::metrics::matched_accuracy;
        use qsc_sim::backend::ShotSampler;
        let inst = flow_instance(60, 16);
        let params = QuantumParams::default();
        let mk = || {
            Pipeline::hermitian(3)
                .seed(2)
                .quantum(&params)
                .backend(ShotSampler::new(2048))
                .run(&inst.graph)
                .unwrap()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.labels, b.labels, "seeded finite shots are reproducible");
        let acc = matched_accuracy(&inst.labels, &a.labels);
        assert!(acc > 0.6, "2048-shot accuracy collapsed: {acc}");
    }

    #[test]
    fn backend_config_round_trips_through_builder() {
        use crate::config::BackendConfig;
        let pl = Pipeline::hermitian(2)
            .backend_config(&BackendConfig::Noisy {
                depolarizing: 0.01,
                readout_flip: 0.02,
            })
            .unwrap();
        assert_eq!(pl.backend_name(), "noisy_statevector");
        // Out-of-range deserialized configs surface as typed errors, not
        // panics.
        assert!(Pipeline::hermitian(2)
            .backend_config(&BackendConfig::Noisy {
                depolarizing: 1.5,
                readout_flip: 0.0,
            })
            .is_err());
        assert!(Pipeline::hermitian(2)
            .backend_config(&BackendConfig::Shots { shots: 0 })
            .is_err());
    }
}
