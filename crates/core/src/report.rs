//! Tiny CSV/JSON and table sinks used by the experiment harness to emit
//! paper-style rows and machine-readable series.

use std::fmt::Write as _;

/// A machine-readable output format of a [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkFormat {
    /// RFC-4180-ish comma-separated values ([`Table::to_csv`]).
    Csv,
    /// An array of one JSON object per row ([`Table::to_json`]).
    Json,
}

impl SinkFormat {
    /// The sink's file extension (no dot).
    pub fn extension(&self) -> &'static str {
        match self {
            SinkFormat::Csv => "csv",
            SinkFormat::Json => "json",
        }
    }

    /// Resolves a spec-file sink name.
    pub fn parse(name: &str) -> Option<SinkFormat> {
        match name {
            "csv" => Some(SinkFormat::Csv),
            "json" => Some(SinkFormat::Json),
            _ => None,
        }
    }
}

/// A rectangular results table with named columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(columns: I) -> Self {
        Self {
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the column count.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The column headers, in order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The data rows, in order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Index of the column with the given header.
    pub fn column_index(&self, header: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == header)
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders RFC-4180-ish CSV (quotes fields containing separators).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_row(&self.columns));
        for row in &self.rows {
            out.push_str(&csv_row(row));
        }
        out
    }

    /// Renders the table as a JSON array with one object per row, keyed by
    /// column name in column order. Cells that parse as finite numbers are
    /// emitted as JSON numbers, everything else as strings, so series files
    /// load directly into analysis tools.
    pub fn to_json(&self) -> String {
        let rows: Vec<qsc_json::Value> = self
            .rows
            .iter()
            .map(|row| {
                qsc_json::Value::Obj(
                    self.columns
                        .iter()
                        .zip(row)
                        .map(|(name, cell)| {
                            let value = match cell.parse::<f64>() {
                                Ok(x) if x.is_finite() => qsc_json::Value::Num(x),
                                _ => qsc_json::Value::Str(cell.clone()),
                            };
                            (name.clone(), value)
                        })
                        .collect(),
                )
            })
            .collect();
        qsc_json::Value::Arr(rows).pretty()
    }

    /// Renders the table in the given sink format.
    pub fn render(&self, format: SinkFormat) -> String {
        match format {
            SinkFormat::Csv => self.to_csv(),
            SinkFormat::Json => self.to_json(),
        }
    }

    /// Renders an aligned plain-text table (what the experiments binary
    /// prints as the "paper row" view).
    pub fn to_aligned(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, fields: &[String]| {
            let cells: Vec<String> = fields
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        };
        fmt_row(&mut out, &self.columns);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Encodes one CSV line (including the trailing newline) with the exact
/// quoting rules of [`Table::to_csv`] — streaming emitters (the sweep
/// service's row stream) use this so incremental output concatenates to
/// byte-identical CSV.
pub fn csv_row<S: AsRef<str>>(fields: &[S]) -> String {
    let encoded: Vec<String> = fields
        .iter()
        .map(|f| {
            let f = f.as_ref();
            if f.contains(',') || f.contains('"') || f.contains('\n') {
                format!("\"{}\"", f.replace('"', "\"\""))
            } else {
                f.to_string()
            }
        })
        .collect();
    let mut out = encoded.join(",");
    out.push('\n');
    out
}

/// Formats a float with a fixed number of decimals (helper for rows).
pub fn fmt(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Formats a mean ± standard deviation pair.
pub fn fmt_mean_std(values: &[f64], decimals: usize) -> String {
    if values.is_empty() {
        return "n/a".into();
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    format!("{mean:.decimals$} ± {:.decimals$}", var.sqrt())
}

/// Mean of a slice (0.0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_shape() {
        let mut t = Table::new(["n", "accuracy"]);
        t.push_row(["100", "0.99"]);
        t.push_row(["200", "0.98"]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("n,accuracy\n"));
    }

    #[test]
    fn csv_quotes_special_fields() {
        let mut t = Table::new(["a"]);
        t.push_row(["x,y"]);
        t.push_row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn aligned_output_has_separator() {
        let mut t = Table::new(["col"]);
        t.push_row(["value"]);
        let text = t.to_aligned();
        assert!(text.contains("|-"));
        assert!(text.contains("value"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn json_sink_types_cells() {
        let mut t = Table::new(["n", "acc", "note"]);
        t.push_row(["100", "0.99", "1.000 ± 0.000"]);
        let json = t.to_json();
        let v = qsc_json::Value::parse(&json).unwrap();
        let rows = v.as_array().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("n").unwrap().as_f64(), Some(100.0));
        assert_eq!(rows[0].get("acc").unwrap().as_f64(), Some(0.99));
        assert_eq!(rows[0].get("note").unwrap().as_str(), Some("1.000 ± 0.000"));
        assert_eq!(t.render(SinkFormat::Json), json);
        assert_eq!(t.render(SinkFormat::Csv), t.to_csv());
    }

    #[test]
    fn sink_format_names() {
        assert_eq!(SinkFormat::parse("csv"), Some(SinkFormat::Csv));
        assert_eq!(SinkFormat::parse("json"), Some(SinkFormat::Json));
        assert_eq!(SinkFormat::parse("xml"), None);
        assert_eq!(SinkFormat::Json.extension(), "json");
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        let s = fmt_mean_std(&[1.0, 1.0], 1);
        assert_eq!(s, "1.0 ± 0.0");
        assert_eq!(fmt_mean_std(&[], 1), "n/a");
    }
}
