//! Cost models: the operation-count proxies the runtime comparison (Fig. 2)
//! is built on.
//!
//! Both models follow the theoretical analyses, with every data-dependent
//! parameter **measured from the instance**:
//!
//! * classical: `c_dist·n²·d + c_eig·n³ + n·k²·iters` — dominated by the
//!   `O(n³)` Hermitian eigendecomposition;
//! * quantum: `T_S · (η_S/(ε_dist·ε_B)) · μ(B)·κ(𝓛̃^(k))/ε_λ · T_qmeans`
//!   with `T_S = O(polylog)` under QRAM, `μ(B) = O(n)` in the worst case —
//!   which is what produces the near-linear observed growth.

use crate::config::QuantumParams;
use qsc_graph::MixedGraph;
use serde::{Deserialize, Serialize};

/// Flop-count proxy of the classical pipeline.
///
/// `n` vertices, `k` clusters, `iters` k-means iterations. The constants
/// mirror the dominant terms: one Laplacian build (`n²`), one Hermitian
/// eigendecomposition (`≈ 14n³` flops for tridiagonalization + QL +
/// back-transform), and the k-means sweeps.
pub fn classical_cost(n: usize, k: usize, iters: usize) -> f64 {
    let nf = n as f64;
    let kf = k as f64;
    let laplacian = nf * nf;
    let eigen = 14.0 * nf * nf * nf;
    let kmeans = nf * kf * (2.0 * kf) * iters as f64;
    laplacian + eigen + kmeans
}

/// `μ(B)` of the mixed graph's incidence matrix, computed analytically
/// (never materializing the `n × m` matrix):
///
/// * row `i` of `B` has one entry of modulus `√w_e` per connection `e`
///   incident to `i`, so `s_p(B) = max_i Σ_{e∋i} w_e^{p/2}`;
/// * each column has exactly two entries of modulus `√w_e`, so
///   `s_p(Bᵀ) = max_e 2·w_e^{p/2}`;
/// * `‖B‖_F = sqrt(Σ_e 2·w_e)`.
///
/// `μ` is the minimum of the Frobenius norm and
/// `sqrt(s_{2p}(B)·s_{2(1−p)}(Bᵀ))` over a grid of `p`.
pub fn incidence_mu(g: &MixedGraph) -> f64 {
    let weights: Vec<f64> = g
        .edges()
        .iter()
        .map(|e| e.weight)
        .chain(g.arcs().iter().map(|a| a.weight))
        .collect();
    if weights.is_empty() {
        return 0.0;
    }
    let fro = (2.0 * weights.iter().sum::<f64>()).sqrt();

    // Per-vertex incident weights.
    let n = g.num_vertices();
    let mut incident: Vec<Vec<f64>> = vec![Vec::new(); n];
    for e in g.edges() {
        incident[e.u].push(e.weight);
        incident[e.v].push(e.weight);
    }
    for a in g.arcs() {
        incident[a.from].push(a.weight);
        incident[a.to].push(a.weight);
    }

    let s_rows = |p: f64| -> f64 {
        incident
            .iter()
            .map(|ws| ws.iter().map(|w| w.powf(p / 2.0)).sum::<f64>())
            .fold(0.0, f64::max)
    };
    let s_cols = |p: f64| -> f64 {
        weights
            .iter()
            .map(|w| 2.0 * w.powf(p / 2.0))
            .fold(0.0, f64::max)
    };

    let mut best = fro;
    for step in 0..=8 {
        let p = step as f64 / 8.0;
        let candidate = (s_rows(2.0 * p) * s_cols(2.0 * (1.0 - p))).sqrt();
        if candidate.is_finite() && candidate > 0.0 {
            best = best.min(candidate);
        }
    }
    best
}

/// Measured instance parameters feeding [`quantum_cost`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantumCostInputs {
    /// Number of vertices (for the QRAM polylog factor).
    pub n: usize,
    /// Number of spectral dimensions actually selected.
    pub k_selected: usize,
    /// `μ(B)` of the incidence matrix (see [`incidence_mu`]).
    pub mu_b: f64,
    /// Condition number `κ(𝓛̃^(k))` of the projected Laplacian (ratio of
    /// largest to smallest selected non-zero eigenvalue).
    pub kappa: f64,
    /// Row-norm spread `η` of the spectral embedding handed to q-means.
    pub eta_embedding: f64,
}

/// Query-count proxy of the quantum pipeline under the QRAM assumption.
pub fn quantum_cost(inputs: &QuantumCostInputs, params: &QuantumParams) -> f64 {
    let n = inputs.n.max(2) as f64;
    let t_s = n.log2().powi(2); // QRAM access: polylog(n)
    let access_b = t_s / (params.epsilon_dist * params.epsilon_b);
    let projection = inputs.mu_b * inputs.kappa / params.epsilon_lambda();
    let kf = inputs.k_selected.max(1) as f64;
    let qmeans = kf.powi(3) * inputs.eta_embedding.powf(2.5) / params.delta.powi(3);
    access_b * projection * qmeans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classical_cost_cubic_dominant() {
        let c1 = classical_cost(100, 3, 20);
        let c2 = classical_cost(200, 3, 20);
        let ratio = c2 / c1;
        assert!(
            (ratio - 8.0).abs() < 0.5,
            "expected ≈8× for 2× n, got {ratio}"
        );
    }

    #[test]
    fn incidence_mu_matches_dense_mu_small() {
        // Cross-check the analytic μ(B) against the dense computation.
        use qsc_graph::generators::{random_mixed, RandomMixedParams};
        use qsc_graph::incidence_matrix;
        use qsc_linalg::params::mu;
        let g = random_mixed(&RandomMixedParams {
            n: 12,
            p_undirected: 0.3,
            p_directed: 0.3,
            weight_range: (0.5, 2.0),
            seed: 3,
        })
        .unwrap();
        let analytic = incidence_mu(&g);
        let dense = mu(&incidence_matrix(&g, 0.25));
        assert!(
            (analytic - dense).abs() < 1e-9,
            "analytic {analytic} vs dense {dense}"
        );
    }

    #[test]
    fn incidence_mu_grows_subquadratically() {
        use qsc_graph::generators::{dsbm, DsbmParams};
        let mu_at = |n: usize| {
            let inst = dsbm(&DsbmParams {
                n,
                seed: 1,
                ..DsbmParams::default()
            })
            .unwrap();
            incidence_mu(&inst.graph)
        };
        let m200 = mu_at(200);
        let m400 = mu_at(400);
        // Fixed edge probability ⇒ ‖B‖_F ~ n; μ must not grow faster.
        let ratio = m400 / m200;
        assert!(ratio < 3.0, "μ growth ratio {ratio} too steep");
    }

    #[test]
    fn quantum_cost_monotone_in_kappa_and_mu() {
        let params = QuantumParams::default();
        let base = QuantumCostInputs {
            n: 500,
            k_selected: 3,
            mu_b: 30.0,
            kappa: 2.0,
            eta_embedding: 1.5,
        };
        let c0 = quantum_cost(&base, &params);
        let c_kappa = quantum_cost(&QuantumCostInputs { kappa: 4.0, ..base }, &params);
        let c_mu = quantum_cost(&QuantumCostInputs { mu_b: 60.0, ..base }, &params);
        assert!(c_kappa > c0);
        assert!((c_mu / c0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_mu_is_zero() {
        let g = MixedGraph::new(5);
        assert_eq!(incidence_mu(&g), 0.0);
    }

    #[test]
    fn finer_precision_costs_more() {
        let inputs = QuantumCostInputs {
            n: 500,
            k_selected: 3,
            mu_b: 30.0,
            kappa: 2.0,
            eta_embedding: 1.5,
        };
        let coarse = QuantumParams::default();
        let fine = QuantumParams {
            qpe_bits: coarse.qpe_bits + 2,
            delta: coarse.delta / 2.0,
            ..coarse.clone()
        };
        assert!(quantum_cost(&inputs, &fine) > quantum_cost(&inputs, &coarse));
    }
}
