//! Well-clusterability measurement — re-exported from
//! [`qsc_cluster::clusterability`], where the implementation moved so the
//! metrics registry ([`qsc_cluster::registry`]) can evaluate it without a
//! dependency on this crate. The `qsc_core::clusterability` paths keep
//! working.

pub use qsc_cluster::clusterability::{measure_clusterability, Clusterability};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_spectral_embedding_of_flow_dsbm_is_well_clusterable() {
        // The claim the evaluation verifies: once projected onto the
        // spectral space *and row-normalized* (the NJW step that collapses
        // each cluster's shell onto a point), flow clusters satisfy the
        // q-means assumption. The raw embedding's clusters are thin shells
        // whose radius is comparable to their separation — measured in T5.
        use crate::pipeline::Pipeline;
        use qsc_graph::generators::{dsbm, DsbmParams, MetaGraph};
        let inst = dsbm(&DsbmParams {
            n: 120,
            k: 3,
            p_intra: 0.25,
            p_inter: 0.25,
            eta_flow: 1.0,
            meta: MetaGraph::Cycle,
            seed: 8,
            ..DsbmParams::default()
        })
        .unwrap();
        let pl = Pipeline::hermitian(3).seed(2);
        let out = pl.clone().normalize_rows(true).run(&inst.graph).unwrap();
        let normalized = measure_clusterability(&out.embedding, &out.labels).unwrap();

        let raw_out = pl.run(&inst.graph).unwrap();
        let raw = measure_clusterability(&raw_out.embedding, &raw_out.labels).unwrap();
        assert!(
            normalized.separation_ratio > raw.separation_ratio,
            "normalization must tighten the clusters: {normalized:?} vs {raw:?}"
        );

        // An honest finding of the reproduction (recorded in EXPERIMENTS.md):
        // even though clustering succeeds, the *strict* Definition-4 bar is
        // not met on this instance — the 2nd/3rd eigenvectors carry bulk
        // noise that dilutes the embedding. The structure must still beat a
        // label-shuffled control decisively.
        let shuffled: Vec<usize> = (0..out.labels.len()).map(|i| (i * 7 + 1) % 3).collect();
        let control = measure_clusterability(&out.embedding, &shuffled).unwrap();
        assert!(
            normalized.separation_ratio > 3.0 * control.separation_ratio,
            "true labels must beat shuffled control: {normalized:?} vs {control:?}"
        );
    }
}
