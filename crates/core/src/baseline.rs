//! Comparison baselines.
//!
//! * The direction-blind classical method — arcs become undirected edges,
//!   then ordinary (real) normalized spectral clustering — is
//!   [`Pipeline::symmetrized`](crate::Pipeline::symmetrized) (or the
//!   [`symmetrize`](crate::Pipeline::symmetrize) builder flag), equivalent
//!   to running the Hermitian pipeline at `q = 0`: literally "what a user
//!   without Hermitian machinery would run".
//! * [`adjacency_kmeans`] — the naive baseline: k-means directly on the
//!   rows of the Hermitian adjacency (no spectral step).

use crate::config::ClusteringConfig;
use crate::error::Error;
use qsc_cluster::{kmeans, KMeansConfig};
use qsc_graph::{hermitian_adjacency, MixedGraph};
use qsc_linalg::vector::interleave_re_im;

/// Naive baseline: k-means on the raw rows of the Hermitian adjacency
/// matrix at rotation `q` (each row realized in `R^{2n}`). No spectral
/// dimensionality reduction — this is what the spectral step is supposed
/// to beat.
///
/// # Errors
///
/// Returns [`Error`] for inconsistent requests or k-means failures.
pub fn adjacency_kmeans(
    g: &MixedGraph,
    k: usize,
    q: f64,
    clustering: &ClusteringConfig,
    seed: u64,
) -> Result<Vec<usize>, Error> {
    crate::pipeline::validate_request(g, k)?;
    let h = hermitian_adjacency(g, q);
    let rows: Vec<Vec<f64>> = (0..h.nrows()).map(|i| interleave_re_im(h.row(i))).collect();
    let km = kmeans(
        &rows,
        &KMeansConfig {
            k,
            max_iter: clustering.max_iter,
            tol: clustering.tol,
            restarts: clustering.restarts,
            seed,
        },
    )?;
    Ok(km.labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use qsc_cluster::metrics::matched_accuracy;
    use qsc_graph::generators::{dsbm, DsbmParams, MetaGraph};

    #[test]
    fn symmetrized_equals_q_zero() {
        let inst = dsbm(&DsbmParams {
            n: 60,
            k: 3,
            eta_flow: 1.0,
            seed: 4,
            ..DsbmParams::default()
        })
        .unwrap();
        let sym = Pipeline::symmetrized(3).seed(7).run(&inst.graph).unwrap();
        let q0 = Pipeline::hermitian(3)
            .q(0.0)
            .seed(7)
            .run(&inst.graph)
            .unwrap();
        // Identical spectra: the symmetrized Laplacian *is* the q=0
        // Hermitian Laplacian.
        for (a, b) in sym.spectrum.iter().zip(&q0.spectrum) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(sym.labels, q0.labels);
    }

    #[test]
    fn hermitian_beats_symmetrized_on_flow_clusters() {
        // The paper's Table II shape in miniature.
        let inst = dsbm(&DsbmParams {
            n: 120,
            k: 3,
            p_intra: 0.25,
            p_inter: 0.25,
            eta_flow: 1.0,
            meta: MetaGraph::Cycle,
            seed: 10,
            ..DsbmParams::default()
        })
        .unwrap();
        let herm = Pipeline::hermitian(3).seed(3).run(&inst.graph).unwrap();
        let sym = Pipeline::symmetrized(3).seed(3).run(&inst.graph).unwrap();
        let acc_h = matched_accuracy(&inst.labels, &herm.labels);
        let acc_s = matched_accuracy(&inst.labels, &sym.labels);
        assert!(
            acc_h > acc_s + 0.2,
            "hermitian {acc_h} should beat symmetrized {acc_s}"
        );
    }

    #[test]
    fn adjacency_kmeans_runs() {
        let inst = dsbm(&DsbmParams {
            n: 40,
            seed: 5,
            ..DsbmParams::default()
        })
        .unwrap();
        let labels = adjacency_kmeans(
            &inst.graph,
            3,
            qsc_graph::Q_CLASSICAL,
            &Default::default(),
            0,
        )
        .unwrap();
        assert_eq!(labels.len(), 40);
        assert!(labels.iter().all(|&l| l < 3));
    }
}
