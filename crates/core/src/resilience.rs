//! The fault-tolerant execution layer: failure classification, per-instance
//! error reports, and the [`ResiliencePolicy`] that configures retries,
//! deadlines, memory budgets, backend fallback chains and deterministic
//! fault injection.
//!
//! The policy is consumed by the isolated batch runners
//! ([`Pipeline::run_many_isolated`](crate::Pipeline::run_many_isolated) and
//! [`Pipeline::run_many_clusterers_isolated`](crate::Pipeline::run_many_clusterers_isolated)),
//! which catch per-instance panics on the worker pool and convert every
//! failure — panic or typed error — into an [`InstanceError`] instead of
//! poisoning the whole batch. The plain runners
//! ([`Pipeline::run`](crate::Pipeline::run),
//! [`Pipeline::run_many`](crate::Pipeline::run_many)) are untouched by the
//! policy: same results, same error propagation, bit for bit.
//!
//! Policies serialize through `qsc-json` as the spec-file `"resilience"`
//! block (see `docs/RESILIENCE.md` for the schema and a worked example):
//!
//! ```text
//! "resilience": {
//!   "retries": 2,
//!   "deadline_ms": 60000,
//!   "state_budget_bytes": 1073741824,
//!   "fallbacks": [{"noisy": {"depolarizing": 0.05}}],
//!   "fault_plan": {"seed": 7, "rates": {"task_start": 0.1}}
//! }
//! ```

use crate::config::BackendConfig;
use crate::error::Error;
use qsc_fault::{FaultPlan, FaultPoint};
use qsc_json::{num, obj, FromJson, JsonError, ToJson, Value};
use qsc_linalg::LinalgError;
use qsc_sim::SimError;
use std::fmt;

/// Per-instance results of an isolated batch run: each instance is either
/// its outcome or the typed failure that exhausted the resilience policy.
/// Instance order matches the input batch.
pub type BatchOutcome<T> = Vec<Result<T, InstanceError>>;

/// Coarse classification of a failed pipeline instance — the field the
/// retry/fallback logic dispatches on and the label failed sweep cells
/// carry in tables and CSVs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The instance panicked (caught on the worker pool).
    Panic,
    /// An iterative eigensolver gave up
    /// ([`LinalgError::NoConvergence`]).
    NonConvergence,
    /// A pre-allocation memory estimate exceeded the budget
    /// ([`SimError::BudgetExceeded`]).
    Budget,
    /// A numerical guard tripped: NaN/∞ in an embedding or state-norm
    /// drift ([`SimError::NormDrift`]).
    NonFinite,
    /// The [`ResiliencePolicy::deadline_ms`] wall-clock deadline passed
    /// before any attempt succeeded.
    Deadline,
    /// The request itself is inconsistent
    /// ([`Error::InvalidRequest`]) — never retried.
    Invalid,
    /// Any other typed pipeline error.
    Other,
}

impl FailureKind {
    /// Stable short name, used in failed-cell labels and CSVs.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::NonConvergence => "non_convergence",
            FailureKind::Budget => "budget",
            FailureKind::NonFinite => "numeric",
            FailureKind::Deadline => "deadline",
            FailureKind::Invalid => "invalid",
            FailureKind::Other => "error",
        }
    }

    /// Classifies a typed pipeline error.
    pub fn classify(e: &Error) -> FailureKind {
        match e {
            Error::Linalg(LinalgError::NoConvergence { .. }) => FailureKind::NonConvergence,
            Error::Sim(SimError::BudgetExceeded { .. }) => FailureKind::Budget,
            Error::Sim(SimError::NormDrift { .. }) => FailureKind::NonFinite,
            Error::NonFinite { .. } => FailureKind::NonFinite,
            Error::InvalidRequest { .. } => FailureKind::Invalid,
            _ => FailureKind::Other,
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The failure report of one batch instance after the resilience policy
/// was exhausted: what kind of failure, the last error message, and how
/// many attempts were made.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceError {
    /// Classification of the final failure.
    pub kind: FailureKind,
    /// Message of the final failure (a typed error's `Display` or a panic
    /// payload).
    pub message: String,
    /// Total pipeline attempts made (including backend fallbacks).
    pub attempts: usize,
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} attempt{}: {}",
            self.kind.name(),
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

impl std::error::Error for InstanceError {}

/// Configurable fault tolerance for the isolated batch runners: retry
/// counts, a wall-clock deadline, a state-memory budget, a backend
/// fallback chain and a deterministic fault-injection plan.
///
/// The default policy does nothing: no retries, no deadline, the global
/// state budget, no fallbacks, no injected faults.
///
/// Attached with [`Pipeline::resilience`](crate::Pipeline::resilience);
/// serialized in experiment specs as the `"resilience"` block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResiliencePolicy {
    /// Re-runs granted after a retryable failure (panic, non-convergence,
    /// numerical guard); each retry perturbs the instance seed so
    /// trajectory backends take a fresh sample path. `0` = fail fast.
    pub retries: usize,
    /// Wall-clock deadline per instance in milliseconds; when it passes
    /// between attempts the instance fails with
    /// [`FailureKind::Deadline`]. `None` = no deadline.
    pub deadline_ms: Option<u64>,
    /// Per-allocation state-memory budget in bytes, threaded to the
    /// quantum stages through
    /// [`StageContext`](crate::StageContext); `None` = the global budget
    /// of [`qsc_sim::budget`].
    pub state_budget_bytes: Option<u64>,
    /// Backends tried in order when an attempt fails with
    /// [`FailureKind::Budget`] — graceful degradation (e.g. `DensityMatrix`
    /// past its 13-qubit cap falls back to `NoisyStatevector`).
    pub fallbacks: Vec<BackendConfig>,
    /// Deterministic fault-injection plan, active only under the isolated
    /// runners. `None` = no injected faults.
    pub fault_plan: Option<FaultPlan>,
}

impl ResiliencePolicy {
    /// `true` when this policy changes nothing over the default behavior.
    pub fn is_default(&self) -> bool {
        *self == Self::default()
    }
}

impl ToJson for ResiliencePolicy {
    fn to_json(&self) -> Value {
        let mut fields: Vec<(String, Value)> = Vec::new();
        if self.retries != 0 {
            fields.push(("retries".into(), num(self.retries as f64)));
        }
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".into(), num(ms as f64)));
        }
        if let Some(bytes) = self.state_budget_bytes {
            fields.push(("state_budget_bytes".into(), num(bytes as f64)));
        }
        if !self.fallbacks.is_empty() {
            fields.push((
                "fallbacks".into(),
                Value::Arr(self.fallbacks.iter().map(ToJson::to_json).collect()),
            ));
        }
        if let Some(plan) = &self.fault_plan {
            let mut rates: Vec<(String, Value)> = Vec::new();
            for point in FaultPoint::ALL {
                let rate = plan.rate(point);
                if rate > 0.0 {
                    rates.push((point.name().into(), num(rate)));
                }
            }
            fields.push((
                "fault_plan".into(),
                obj([
                    ("seed", num(plan.seed as f64)),
                    ("rates", Value::Obj(rates)),
                ]),
            ));
        }
        Value::Obj(fields)
    }
}

impl FromJson for ResiliencePolicy {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let mut r = value.reader("resilience")?;
        let mut policy = ResiliencePolicy {
            retries: r.usize_or("retries", 0)?,
            deadline_ms: r
                .take("deadline_ms")
                .map(|v| v.as_u64())
                .map(|v| {
                    v.ok_or_else(|| {
                        JsonError::msg("resilience.deadline_ms: expected a non-negative integer")
                    })
                })
                .transpose()?,
            state_budget_bytes: None,
            fallbacks: Vec::new(),
            fault_plan: None,
        };
        if let Some(v) = r.take("state_budget_bytes") {
            policy.state_budget_bytes = Some(v.as_u64().ok_or_else(|| {
                JsonError::msg("resilience.state_budget_bytes: expected a non-negative integer")
            })?);
        }
        if let Some(v) = r.take("fallbacks") {
            let items = v.as_array().ok_or_else(|| {
                JsonError::msg(format!(
                    "resilience.fallbacks: expected an array, found {}",
                    v.type_name()
                ))
            })?;
            policy.fallbacks = items
                .iter()
                .map(BackendConfig::from_json)
                .collect::<Result<_, _>>()?;
        }
        if let Some(v) = r.take("fault_plan") {
            let mut pr = v.reader("resilience.fault_plan")?;
            let mut plan = FaultPlan::seeded(pr.u64_or("seed", 0)?);
            if let Some(rates) = pr.take("rates") {
                let fields = rates.as_object().ok_or_else(|| {
                    JsonError::msg(format!(
                        "resilience.fault_plan.rates: expected an object, found {}",
                        rates.type_name()
                    ))
                })?;
                for (name, rate) in fields {
                    let point = FaultPoint::parse(name).ok_or_else(|| {
                        JsonError::msg(format!(
                            "resilience.fault_plan.rates: unknown fault point `{name}` \
                             (expected task_start | backend_run | lanczos_iteration | \
                             allocation | remote_call)"
                        ))
                    })?;
                    let rate = rate.as_f64().ok_or_else(|| {
                        JsonError::msg(format!(
                            "resilience.fault_plan.rates.{name}: expected a number"
                        ))
                    })?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(JsonError::msg(format!(
                            "resilience.fault_plan.rates.{name}: rate {rate} outside [0, 1]"
                        )));
                    }
                    plan = plan.with_rate(point, rate);
                }
            }
            pr.finish()?;
            policy.fault_plan = Some(plan);
        }
        r.finish()?;
        Ok(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_kind_classification() {
        assert_eq!(
            FailureKind::classify(&Error::Linalg(LinalgError::NoConvergence {
                algorithm: "lanczos",
                iterations: 7,
                residual: Some(1e-3),
            })),
            FailureKind::NonConvergence
        );
        assert_eq!(
            FailureKind::classify(&Error::Sim(SimError::BudgetExceeded {
                requested_bytes: 1 << 40,
                budget_bytes: 1 << 30,
                context: "x".into(),
            })),
            FailureKind::Budget
        );
        assert_eq!(
            FailureKind::classify(&Error::Sim(SimError::NormDrift {
                norm: f64::NAN,
                context: "x".into(),
            })),
            FailureKind::NonFinite
        );
        assert_eq!(
            FailureKind::classify(&Error::NonFinite {
                context: "row".into()
            }),
            FailureKind::NonFinite
        );
        assert_eq!(
            FailureKind::classify(&Error::InvalidRequest {
                context: "k = 0".into()
            }),
            FailureKind::Invalid
        );
        assert_eq!(
            FailureKind::classify(&Error::Sim(SimError::InvalidParameter {
                context: "x".into()
            })),
            FailureKind::Other
        );
        // Transport failures land in the generic `error` bucket — the
        // retry/fallback logic recognizes them structurally (see
        // `guarded`), not by kind.
        assert_eq!(
            FailureKind::classify(&Error::Sim(SimError::Remote {
                addr: "127.0.0.1:1".into(),
                context: "connection refused".into()
            })),
            FailureKind::Other
        );
    }

    #[test]
    fn kind_names_are_stable() {
        // Failed-cell labels and CSVs depend on these exact strings.
        assert_eq!(FailureKind::Panic.name(), "panic");
        assert_eq!(FailureKind::NonConvergence.name(), "non_convergence");
        assert_eq!(FailureKind::Budget.name(), "budget");
        assert_eq!(FailureKind::NonFinite.name(), "numeric");
        assert_eq!(FailureKind::Deadline.name(), "deadline");
        assert_eq!(FailureKind::Invalid.name(), "invalid");
        assert_eq!(FailureKind::Other.name(), "error");
    }

    #[test]
    fn instance_error_displays_kind_and_attempts() {
        let e = InstanceError {
            kind: FailureKind::Panic,
            message: "boom".into(),
            attempts: 3,
        };
        let s = e.to_string();
        assert!(s.contains("panic"), "{s}");
        assert!(s.contains("3 attempts"), "{s}");
        assert!(s.contains("boom"), "{s}");
    }

    #[test]
    fn policy_json_round_trips() {
        let policy = ResiliencePolicy {
            retries: 2,
            deadline_ms: Some(60_000),
            state_budget_bytes: Some(1 << 30),
            fallbacks: vec![
                BackendConfig::Noisy {
                    depolarizing: 0.05,
                    readout_flip: 0.0,
                },
                BackendConfig::Statevector,
            ],
            fault_plan: Some(
                FaultPlan::seeded(7)
                    .with_rate(FaultPoint::TaskStart, 0.1)
                    .with_rate(FaultPoint::LanczosIteration, 0.02),
            ),
        };
        let v = policy.to_json();
        assert_eq!(ResiliencePolicy::from_json(&v).unwrap(), policy, "{v}");
        let reparsed = Value::parse(&v.to_string()).unwrap();
        assert_eq!(ResiliencePolicy::from_json(&reparsed).unwrap(), policy);
    }

    #[test]
    fn default_policy_round_trips_as_empty_object() {
        let policy = ResiliencePolicy::default();
        assert!(policy.is_default());
        let v = policy.to_json();
        assert_eq!(v, Value::Obj(vec![]));
        assert_eq!(ResiliencePolicy::from_json(&v).unwrap(), policy);
    }

    #[test]
    fn policy_json_rejects_malformed_input() {
        for bad in [
            r#"{"retrries": 1}"#,
            r#"{"retries": -1}"#,
            r#"{"deadline_ms": "soon"}"#,
            r#"{"state_budget_bytes": 1.5}"#,
            r#"{"fallbacks": "statevector"}"#,
            r#"{"fallbacks": ["statevctor"]}"#,
            r#"{"fault_plan": {"seed": 1, "rates": {"task_begin": 0.1}}}"#,
            r#"{"fault_plan": {"seed": 1, "rates": {"task_start": 1.5}}}"#,
            r#"{"fault_plan": {"seed": 1, "rate": {}}}"#,
            "3",
        ] {
            let v = Value::parse(bad).unwrap();
            assert!(ResiliencePolicy::from_json(&v).is_err(), "accepted {bad}");
        }
    }
}
