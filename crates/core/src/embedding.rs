//! Spectral embeddings: from eigenvectors of the Hermitian Laplacian to the
//! real feature rows k-means consumes.

use qsc_linalg::vector::interleave_re_im;
use qsc_linalg::CMatrix;

/// Extracts the spectral embedding from selected eigenvector columns: row
/// `i` of the result is the complex vector `(u_{j1}[i], …, u_{jm}[i])`
/// realized in `R^{2m}` by interleaving real and imaginary parts (an
/// isometry, so k-means distances are exactly the complex distances).
///
/// # Panics
///
/// Panics if any selected column index is out of range.
pub fn embed_rows(eigenvectors: &CMatrix, selected: &[usize]) -> Vec<Vec<f64>> {
    let sub = eigenvectors.select_columns(selected);
    (0..sub.nrows())
        .map(|i| interleave_re_im(sub.row(i)))
        .collect()
}

/// Row-normalizes an embedding in place (Ng–Jordan–Weiss): each non-zero
/// row is scaled to unit ℓ2 norm. Zero rows are left untouched.
pub fn normalize_rows(embedding: &mut [Vec<f64>]) {
    for row in embedding.iter_mut() {
        let norm: f64 = row.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for x in row.iter_mut() {
                *x /= norm;
            }
        }
    }
}

/// Row norms of an embedding.
pub fn row_norms(embedding: &[Vec<f64>]) -> Vec<f64> {
    embedding
        .iter()
        .map(|row| row.iter().map(|x| x * x).sum::<f64>().sqrt())
        .collect()
}

/// The `η` data parameter of an embedding: max over min squared non-zero
/// row norm (1.0 if fewer than two non-zero rows).
pub fn eta_of_embedding(embedding: &[Vec<f64>]) -> f64 {
    let mut max_sq: f64 = 0.0;
    let mut min_sq = f64::INFINITY;
    for row in embedding {
        let sq: f64 = row.iter().map(|x| x * x).sum();
        if sq > 0.0 {
            max_sq = max_sq.max(sq);
            min_sq = min_sq.min(sq);
        }
    }
    if min_sq.is_finite() && min_sq > 0.0 {
        max_sq / min_sq
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsc_linalg::Complex64;

    #[test]
    fn embedding_dimensions() {
        let v = CMatrix::from_fn(4, 4, |i, j| Complex64::new(i as f64, j as f64));
        let emb = embed_rows(&v, &[0, 2]);
        assert_eq!(emb.len(), 4);
        assert_eq!(emb[0].len(), 4); // 2 complex → 4 real
                                     // Row 1, column 2 → re=1, im=2 at positions 2,3.
        assert_eq!(emb[1][2], 1.0);
        assert_eq!(emb[1][3], 2.0);
    }

    #[test]
    fn normalization_makes_unit_rows() {
        let mut emb = vec![vec![3.0, 4.0], vec![0.0, 0.0], vec![1.0, 0.0]];
        normalize_rows(&mut emb);
        assert!((emb[0][0] - 0.6).abs() < 1e-12);
        assert_eq!(emb[1], vec![0.0, 0.0]); // zero row untouched
        assert_eq!(emb[2], vec![1.0, 0.0]);
    }

    #[test]
    fn eta_measures_spread() {
        let emb = vec![vec![1.0, 0.0], vec![2.0, 0.0]];
        assert!((eta_of_embedding(&emb) - 4.0).abs() < 1e-12);
        let uniform = vec![vec![1.0], vec![1.0]];
        assert!((eta_of_embedding(&uniform) - 1.0).abs() < 1e-12);
        assert_eq!(eta_of_embedding(&[]), 1.0);
    }

    #[test]
    fn row_norms_computed() {
        let emb = vec![vec![3.0, 4.0], vec![0.0, 0.0]];
        let norms = row_norms(&emb);
        assert!((norms[0] - 5.0).abs() < 1e-12);
        assert_eq!(norms[1], 0.0);
    }
}
