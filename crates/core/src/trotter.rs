//! Edge-local Trotterization of the Hermitian Laplacian evolution.
//!
//! The Laplacian of a mixed graph is a sum of **edge terms**,
//! `L = Σ_e L_e`, where each `L_e` acts only on the two endpoint
//! coordinates (a 2×2 Hermitian block: weights on the diagonal, the
//! phase-encoded coupling off it). Each `e^{iτL_e}` is therefore a
//! *two-level unitary* with a closed form — and the product formula
//!
//! ```text
//! e^{iLt} ≈ ( Π_e e^{i(t/m)L_e} )^m
//! ```
//!
//! is precisely how the evolution would be compiled on hardware without
//! assuming an oracle for `e^{iLt}`. The first-order Trotter error decays
//! as `O(t²/m)`; experiment F6 measures it.

use crate::error::PipelineError;
use qsc_graph::MixedGraph;
use qsc_linalg::{CMatrix, Complex64, C_ZERO};
use std::f64::consts::TAU;

/// One edge term of the (unnormalized) Hermitian Laplacian: the 2×2
/// Hermitian block `[[w, −w·e^{iθ}], [−w·e^{−iθ}, w]]` on endpoints
/// `(u, v)`, with `θ = 2πq` for arcs and `0` for undirected edges.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeTerm {
    /// First endpoint (row/column index of the block's first coordinate).
    pub u: usize,
    /// Second endpoint.
    pub v: usize,
    /// Edge weight `w`.
    pub weight: f64,
    /// Coupling phase `e^{iθ}` as seen at `(u, v)`.
    pub phase: Complex64,
}

impl EdgeTerm {
    /// The exact two-level unitary `e^{iτ·L_e}`.
    ///
    /// `L_e` has eigenvalues `0` (symmetric combination) and `2w`
    /// (antisymmetric), so
    /// `e^{iτL_e} = P_0 + e^{2iwτ}·P_{2w}` with rank-1 projectors built
    /// from the phase.
    pub fn evolution(&self, tau: f64) -> TwoLevelBlock {
        // L_e = w·[[1, p], [p̄, 1]] with |p| = 1 has eigenpairs
        //   λ = 2w : (1, p̄)/√2   with projector P₊ = ½[[1, p], [p̄, 1]],
        //   λ = 0  : (1, −p̄)/√2  with projector P₀ = ½[[1, −p], [−p̄, 1]],
        // so e^{iτL_e} = P₀ + e^{2iwτ}·P₊.
        let e = Complex64::cis(2.0 * self.weight * tau);
        let p = self.phase;
        let half = 0.5;
        TwoLevelBlock {
            u: self.u,
            v: self.v,
            m00: (Complex64::real(1.0) + e).scale(half),
            m01: (p * e - p).scale(half),
            m10: (p.conj() * e - p.conj()).scale(half),
            m11: (Complex64::real(1.0) + e).scale(half),
        }
    }
}

/// A two-level unitary block ready to be applied to vectors/matrices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoLevelBlock {
    /// First coordinate.
    pub u: usize,
    /// Second coordinate.
    pub v: usize,
    /// Block entries (row-major on coordinates `(u, v)`).
    pub m00: Complex64,
    /// Entry `(u, v)`.
    pub m01: Complex64,
    /// Entry `(v, u)`.
    pub m10: Complex64,
    /// Entry `(v, v)`.
    pub m11: Complex64,
}

impl TwoLevelBlock {
    /// Applies the block to a vector in place.
    pub fn apply(&self, x: &mut [Complex64]) {
        let a = x[self.u];
        let b = x[self.v];
        x[self.u] = self.m00 * a + self.m01 * b;
        x[self.v] = self.m10 * a + self.m11 * b;
    }
}

/// Extracts the edge terms of the unnormalized Hermitian Laplacian
/// `L(q) = Σ_e L_e` of a mixed graph.
pub fn edge_terms(g: &MixedGraph, q: f64) -> Vec<EdgeTerm> {
    let mut terms = Vec::with_capacity(g.num_connections());
    for e in g.edges() {
        terms.push(EdgeTerm {
            u: e.u,
            v: e.v,
            weight: e.weight,
            phase: Complex64::real(-1.0),
        });
    }
    let phase = Complex64::cis(TAU * q);
    for a in g.arcs() {
        terms.push(EdgeTerm {
            u: a.from,
            v: a.to,
            weight: a.weight,
            phase: -phase,
        });
    }
    terms
}

/// First-order Trotter approximation of `e^{i·t·L(q)}` applied to a vector:
/// `m` repetitions of the ordered edge-term product.
///
/// # Errors
///
/// Returns [`PipelineError::InvalidRequest`] if `steps == 0` or the vector
/// length differs from the vertex count.
pub fn trotter_apply(
    g: &MixedGraph,
    q: f64,
    t: f64,
    steps: usize,
    x: &[Complex64],
) -> Result<Vec<Complex64>, PipelineError> {
    if steps == 0 {
        return Err(PipelineError::InvalidRequest {
            context: "trotter: steps must be positive".into(),
        });
    }
    if x.len() != g.num_vertices() {
        return Err(PipelineError::InvalidRequest {
            context: format!(
                "trotter: vector length {} != {} vertices",
                x.len(),
                g.num_vertices()
            ),
        });
    }
    let tau = t / steps as f64;
    let blocks: Vec<TwoLevelBlock> = edge_terms(g, q)
        .iter()
        .map(|term| term.evolution(tau))
        .collect();
    let mut y = x.to_vec();
    for _ in 0..steps {
        for b in &blocks {
            b.apply(&mut y);
        }
    }
    Ok(y)
}

/// Builds the full Trotterized unitary matrix (columns = Trotter applied to
/// basis vectors). `O(m·|E|·n)` — for validation and the F6 measurement.
///
/// # Errors
///
/// Same contract as [`trotter_apply`].
pub fn trotter_unitary(
    g: &MixedGraph,
    q: f64,
    t: f64,
    steps: usize,
) -> Result<CMatrix, PipelineError> {
    let n = g.num_vertices();
    let mut u = CMatrix::zeros(n, n);
    for col in 0..n {
        let mut e = vec![C_ZERO; n];
        e[col] = Complex64::real(1.0);
        let y = trotter_apply(g, q, t, steps, &e)?;
        for (row, &val) in y.iter().enumerate() {
            u[(row, col)] = val;
        }
    }
    Ok(u)
}

/// Spectral-norm-ish error `‖U_trotter − e^{iLt}‖_max` against the exact
/// evolution, for the F6 series.
///
/// # Errors
///
/// Propagates eigensolver and Trotter errors.
pub fn trotter_error(g: &MixedGraph, q: f64, t: f64, steps: usize) -> Result<f64, PipelineError> {
    use qsc_graph::hermitian_laplacian;
    use qsc_linalg::expm::expi;
    let exact = expi(&hermitian_laplacian(g, q), t)?;
    let approx = trotter_unitary(g, q, t, steps)?;
    Ok((&approx - &exact).max_norm())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsc_graph::generators::{random_mixed, RandomMixedParams};
    use qsc_graph::hermitian_laplacian;

    fn sample_graph(seed: u64) -> MixedGraph {
        random_mixed(&RandomMixedParams {
            n: 8,
            p_undirected: 0.3,
            p_directed: 0.3,
            weight_range: (0.5, 1.5),
            seed,
        })
        .unwrap()
    }

    #[test]
    fn edge_terms_sum_to_laplacian() {
        let g = sample_graph(1);
        for &q in &[0.0, 0.25, 0.4] {
            let l = hermitian_laplacian(&g, q);
            let mut sum = CMatrix::zeros(8, 8);
            for term in edge_terms(&g, q) {
                sum[(term.u, term.u)] += Complex64::real(term.weight);
                sum[(term.v, term.v)] += Complex64::real(term.weight);
                sum[(term.u, term.v)] += term.phase.scale(term.weight);
                sum[(term.v, term.u)] += term.phase.conj().scale(term.weight);
            }
            assert!(
                (&sum - &l).max_norm() < 1e-12,
                "edge terms must sum to L at q={q}"
            );
        }
    }

    #[test]
    fn single_edge_evolution_is_exact() {
        // One edge: Trotter with 1 step is exact.
        let mut g = MixedGraph::new(2);
        g.add_arc(0, 1, 1.3).unwrap();
        let err = trotter_error(&g, 0.25, 0.8, 1).unwrap();
        assert!(err < 1e-10, "single-term Trotter must be exact, err {err}");
    }

    #[test]
    fn trotter_unitary_is_unitary() {
        let g = sample_graph(2);
        let u = trotter_unitary(&g, 0.25, 0.5, 4).unwrap();
        assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn error_decays_linearly_in_steps() {
        let g = sample_graph(3);
        let e4 = trotter_error(&g, 0.25, 1.0, 4).unwrap();
        let e16 = trotter_error(&g, 0.25, 1.0, 16).unwrap();
        let e64 = trotter_error(&g, 0.25, 1.0, 64).unwrap();
        assert!(e16 < e4 / 2.0, "e4={e4} e16={e16}");
        assert!(e64 < e16 / 2.0, "e16={e16} e64={e64}");
        // First-order: quadrupling steps should ≈ quarter the error.
        let ratio = e16 / e64;
        assert!((2.0..8.0).contains(&ratio), "decay ratio {ratio}");
    }

    #[test]
    fn trotter_converges_to_exact_evolution() {
        let g = sample_graph(4);
        let err = trotter_error(&g, 0.25, 0.5, 512).unwrap();
        assert!(err < 5e-3, "512 steps should be accurate, err {err}");
    }

    #[test]
    fn evolution_block_matches_matrix_exponential() {
        use qsc_linalg::expm::expi;
        let term = EdgeTerm {
            u: 0,
            v: 1,
            weight: 0.9,
            phase: Complex64::cis(1.1),
        };
        let tau = 0.37;
        let block = term.evolution(tau);
        // Build L_e and exponentiate exactly.
        let mut le = CMatrix::zeros(2, 2);
        le[(0, 0)] = Complex64::real(term.weight);
        le[(1, 1)] = Complex64::real(term.weight);
        le[(0, 1)] = term.phase.scale(term.weight);
        le[(1, 0)] = term.phase.conj().scale(term.weight);
        let exact = expi(&le, tau).unwrap();
        assert!((block.m00 - exact[(0, 0)]).abs() < 1e-10);
        assert!((block.m01 - exact[(0, 1)]).abs() < 1e-10);
        assert!((block.m10 - exact[(1, 0)]).abs() < 1e-10);
        assert!((block.m11 - exact[(1, 1)]).abs() < 1e-10);
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = sample_graph(5);
        let x = vec![C_ZERO; 8];
        assert!(trotter_apply(&g, 0.25, 1.0, 0, &x).is_err());
        assert!(trotter_apply(&g, 0.25, 1.0, 2, &x[..3]).is_err());
    }
}
