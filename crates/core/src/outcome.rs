//! Output types shared by the classical and quantum pipelines.

use qsc_cluster::registry::MetricContext;
use qsc_graph::MixedGraph;
use serde::{Deserialize, Serialize};

/// Instance measurements and cost-model numbers attached to every run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostics {
    /// Condition number of the projected Laplacian (selected eigenvalues).
    pub kappa: f64,
    /// `μ(B)` of the graph's incidence matrix.
    pub mu_b: f64,
    /// Row-norm spread `η` of the embedding handed to (q-)k-means.
    pub eta_embedding: f64,
    /// Classical flop-count proxy for this instance.
    pub classical_cost: f64,
    /// Quantum query-count proxy (`None` for classical runs).
    pub quantum_cost: Option<f64>,
    /// Iterations used by the winning (q-)k-means restart.
    pub kmeans_iterations: usize,
    /// Number of spectral dimensions actually used (can exceed `k` in the
    /// quantum pipeline when QPE bins collide).
    pub dims_used: usize,
    /// Wall-clock seconds of the run (simulation time, not hardware time).
    pub wall_seconds: f64,
}

/// Result of a spectral-clustering run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusteringOutcome {
    /// Cluster label per vertex, in `0..k`.
    pub labels: Vec<usize>,
    /// The real feature rows k-means clustered (dimension `2·dims_used`).
    pub embedding: Vec<Vec<f64>>,
    /// The full spectrum of the normalized Hermitian Laplacian (ascending).
    pub spectrum: Vec<f64>,
    /// Eigenvalues of the selected (projected) subspace.
    pub selected_eigenvalues: Vec<f64>,
    /// Instance measurements and cost-model numbers.
    pub diagnostics: Diagnostics,
}

impl ClusteringOutcome {
    /// Number of clustered vertices.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the outcome is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The [`MetricContext`] view of this outcome — what the metrics
    /// registry ([`qsc_cluster::registry::MetricKind`]) evaluates over.
    /// Labels, embedding and every diagnostics number are filled in;
    /// `graph` and `truth` come from the caller (the workload knows them,
    /// the outcome does not). Context fields with no source here (e.g.
    /// `edge_disagreement`) stay `None` and can be set on the returned
    /// value.
    pub fn metric_context<'a>(
        &'a self,
        k: usize,
        graph: Option<&'a MixedGraph>,
        truth: Option<&'a [usize]>,
    ) -> MetricContext<'a> {
        MetricContext {
            labels: &self.labels,
            truth,
            graph,
            embedding: Some(&self.embedding),
            k,
            dims_used: Some(self.diagnostics.dims_used as f64),
            wall_seconds: Some(self.diagnostics.wall_seconds),
            classical_cost: Some(self.diagnostics.classical_cost),
            quantum_cost: self.diagnostics.quantum_cost,
            mu_b: Some(self.diagnostics.mu_b),
            kappa: Some(self.diagnostics.kappa),
            eta_embedding: Some(self.diagnostics.eta_embedding),
            edge_disagreement: None,
            clusterability: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_len() {
        let o = ClusteringOutcome {
            labels: vec![0, 1, 0],
            embedding: vec![],
            spectrum: vec![],
            selected_eigenvalues: vec![],
            diagnostics: Diagnostics {
                kappa: 1.0,
                mu_b: 0.0,
                eta_embedding: 1.0,
                classical_cost: 0.0,
                quantum_cost: None,
                kmeans_iterations: 0,
                dims_used: 0,
                wall_seconds: 0.0,
            },
        };
        assert_eq!(o.len(), 3);
        assert!(!o.is_empty());
    }
}
