//! The simulated quantum embedding stage and gate-level reference circuit.
//!
//! [`QpeTomography`] performs the same steps as the classical embedders
//! while introducing the noise its quantum subroutines would: QPE bins
//! every eigenvalue to `t` bits before the threshold decides which
//! eigenvectors form the projected subspace; amplitude estimation perturbs
//! the projected row norms; tomography perturbs their directions. The
//! matching clustering stage is `qsc_cluster::QMeans`, which perturbs every
//! distance and centroid — [`Pipeline::quantum`](crate::Pipeline::quantum)
//! wires both in one call. Each channel is driven by the corresponding
//! `qsc-sim` routine so the injected noise has exactly the magnitude the
//! theory assigns to it.
//!
//! The stage's QPE outcome statistics are produced by the pipeline's
//! execution [`Backend`] (selected with
//! [`Pipeline::backend`](crate::Pipeline::backend)): the default
//! `Statevector` reads exact Fejér-kernel probabilities, a `ShotSampler`
//! replaces them with finite-shot frequencies, and a `NoisyStatevector`
//! degrades them through depolarizing + readout channels.
//!
//! For small systems [`gate_level_projected_row`] *compiles the actual
//! circuit* (QPE → threshold → uncompute) into `qsc_sim` circuit IR,
//! executes it on a backend, and is tested to agree with the exact
//! eigenprojection the fast path uses.

use crate::config::QuantumParams;
use crate::embedding::normalize_rows;
use crate::error::Error;
use crate::pipeline::{Embedder, Embedding, StageContext};
use qsc_graph::MixedGraph;
use qsc_linalg::vector::interleave_re_im;
use qsc_linalg::{eigh, CMatrix, Complex64, CsrMatrix};
use qsc_sim::amplitude::estimate_norm;
use qsc_sim::backend::{Backend, Statevector};
use qsc_sim::tomography::tomography_complex;
use qsc_sim::PhaseEstimator;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The simulated quantum embedding stage: QPE-binned soft spectral
/// projection, amplitude-estimated row norms, tomography-read directions.
///
/// The stage owns the full [`QuantumParams`] precision set; its `δ` field
/// is consumed by the matching `QMeans` clusterer (see
/// [`Pipeline::quantum`](crate::Pipeline::quantum)).
#[derive(Debug, Clone, PartialEq)]
pub struct QpeTomography {
    /// Precision parameters of every quantum subroutine.
    pub params: QuantumParams,
}

impl QpeTomography {
    /// Creates the stage from a precision parameter set.
    pub fn new(params: QuantumParams) -> Self {
        Self { params }
    }
}

impl Default for QpeTomography {
    fn default() -> Self {
        Self::new(QuantumParams::default())
    }
}

impl Embedder for QpeTomography {
    fn name(&self) -> &'static str {
        "qpe_tomography"
    }

    fn quantum_params(&self) -> Option<&QuantumParams> {
        Some(&self.params)
    }

    fn embed(
        &self,
        g: &MixedGraph,
        laplacian: &CsrMatrix,
        ctx: &StageContext,
    ) -> Result<Embedding, Error> {
        let params = &self.params;
        if params.qpe_scale <= 2.0 {
            return Err(Error::InvalidRequest {
                context: format!(
                    "qpe_scale = {} must exceed the Laplacian spectral bound 2",
                    params.qpe_scale
                ),
            });
        }
        if let Some(limit) = ctx.backend.phase_register_limit() {
            if params.qpe_bits > limit {
                // Surfaced as a budget error (not InvalidRequest): the
                // request is fine on a cheaper backend, which lets a
                // resilience fallback chain degrade instead of aborting.
                return Err(Error::Sim(qsc_sim::SimError::BudgetExceeded {
                    requested_bytes: qsc_sim::budget::register_amplitudes(2 * params.qpe_bits)
                        .saturating_mul(qsc_sim::budget::AMP_BYTES),
                    budget_bytes: qsc_sim::budget::register_amplitudes(2 * limit)
                        .saturating_mul(qsc_sim::budget::AMP_BYTES),
                    context: format!(
                        "qpe_bits = {} exceeds the {}-qubit phase-register limit of the `{}` \
                         backend",
                        params.qpe_bits,
                        limit,
                        ctx.backend.name()
                    ),
                }));
            }
        }
        // Pre-allocation estimate for the 2^t phase register, against the
        // policy budget threaded through the stage context (or the global
        // one); also the `allocation` fault-injection point.
        qsc_sim::budget::check_allocation_within(
            ctx.state_budget_bytes,
            qsc_sim::budget::register_amplitudes(params.qpe_bits),
            "qpe phase register",
        )?;
        // Mix the user seed so the quantum-noise stream differs from the
        // k-means stream derived from the same seed.
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x517c_c1b7_2722_0a95);

        // The simulator's privilege: the exact spectrum is available; the
        // algorithmic noise is injected downstream exactly where the quantum
        // subroutines would introduce it.
        let eig = eigh(&laplacian.to_dense())?;

        // --- QPE: every eigenvalue is known only at t-bit resolution. The
        // threshold ν is placed just above the bin of the k-th smallest
        // rounded eigenvalue, which is all the algorithm can resolve. ---
        let estimator = PhaseEstimator::new(params.qpe_scale, params.qpe_bits)?;
        let mut rounded: Vec<f64> = eig
            .eigenvalues
            .iter()
            .map(|&l| estimator.round(l))
            .collect();
        // QPE-rounded eigenvalues are finite by construction (finite input
        // eigenvalues snapped to finite bin centers), so the total order
        // exists.
        rounded.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let nu = rounded[ctx.k - 1] + estimator.resolution() * 0.5;

        // --- Post-selecting on the thresholded phase register is a *soft*
        // spectral filter: eigencomponent j survives with amplitude √p_j where
        // p_j is the QPE outcome mass in bins below ν. Components with exact
        // bins below ν get p_j ≈ 1; far eigenvalues are suppressed by the
        // Fejér-kernel tails; only boundary eigenvalues are genuinely fuzzy. ---
        let bins = 1usize << params.qpe_bits;
        let mut survival: Vec<f64> = Vec::with_capacity(eig.eigenvalues.len());
        for &l in &eig.eigenvalues {
            // The phase-register statistics come from the execution
            // backend: exact Fejér probabilities on `Statevector`
            // (bit-identical to the analytic path), finite-shot
            // frequencies on `ShotSampler`, noise-degraded on
            // `NoisyStatevector`, fetched over the wire on `Remote`.
            let dist =
                ctx.backend
                    .phase_distribution(l / params.qpe_scale, params.qpe_bits, &mut rng)?;
            survival.push(
                (0..bins)
                    .filter(|&m| params.qpe_scale * m as f64 / bins as f64 <= nu)
                    .map(|m| dist[m])
                    .sum::<f64>(),
            );
        }

        // Dimensions with non-negligible survival form the embedding; bound
        // the blow-up from bin collisions.
        const SURVIVAL_FLOOR: f64 = 0.01;
        let mut selected: Vec<usize> = (0..survival.len())
            .filter(|&j| survival[j] >= SURVIVAL_FLOOR)
            .collect();
        // Survival masses are sums of probabilities in [0, 1] and the
        // eigenvalues come from a converged Hermitian eigensolve — both
        // finite, so the comparator is total.
        selected.sort_by(|&a, &b| {
            survival[b].partial_cmp(&survival[a]).expect("finite").then(
                eig.eigenvalues[a]
                    .partial_cmp(&eig.eigenvalues[b])
                    .expect("finite"),
            )
        });
        let cap = (ctx.k * params.max_dims_factor).max(ctx.k);
        selected.truncate(cap);
        selected.sort_unstable();

        // --- Project rows through the soft filter, read them out through AE
        // (norms) + tomography (directions). ---
        let sub = eig.eigenvectors.select_columns(&selected);
        let weights: Vec<f64> = selected.iter().map(|&j| survival[j].sqrt()).collect();
        let n = g.num_vertices();
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
        for i in 0..n {
            let row: Vec<Complex64> = sub
                .row(i)
                .iter()
                .zip(&weights)
                .map(|(z, &w)| z.scale(w))
                .collect();
            let true_norm: f64 = row.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            if true_norm <= f64::EPSILON {
                rows.push(vec![0.0; 2 * selected.len()]);
                continue;
            }
            // Row of a unitary submatrix: norm ≤ 1, so AE with scale 1 applies.
            let est_norm = estimate_norm(
                true_norm.min(1.0),
                1.0,
                params.norm_estimation_iters,
                &mut rng,
            )?;
            let direction = tomography_complex(&row, params.tomography_shots, &mut rng)?;
            // Tomography preserves the exact input norm; rescale so the norm
            // carries the AE error instead.
            let dir_norm: f64 = direction.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            let scale = if dir_norm > 0.0 {
                est_norm / dir_norm
            } else {
                0.0
            };
            let noisy: Vec<Complex64> = direction.iter().map(|z| z.scale(scale)).collect();
            rows.push(interleave_re_im(&noisy));
        }
        if ctx.normalize_rows {
            normalize_rows(&mut rows);
        } else {
            // The q-means analysis states δ relative to data whose smallest
            // non-zero row norm is 1 (Definition 3's convention). Rescale the
            // embedding to that unit — a pure unit change k-means itself is
            // invariant to, but which gives the absolute δ noise its intended
            // relative meaning.
            let min_norm = rows
                .iter()
                .map(|row| row.iter().map(|x| x * x).sum::<f64>().sqrt())
                .filter(|&n| n > f64::EPSILON)
                .fold(f64::INFINITY, f64::min);
            if min_norm.is_finite() && min_norm > 0.0 {
                for row in &mut rows {
                    for x in row.iter_mut() {
                        *x /= min_norm;
                    }
                }
            }
        }

        let selected_eigenvalues: Vec<f64> = selected.iter().map(|&j| eig.eigenvalues[j]).collect();
        let dims_used = selected.len();
        Ok(Embedding {
            rows,
            spectrum: eig.eigenvalues,
            selected_eigenvalues,
            dims_used,
            lanczos_iterations: None,
        })
    }
}

/// Compiles and runs the *actual* QPE-projection circuit for one vertex of
/// a small graph on the default [`Statevector`] backend: prepare `|i⟩`, QPE
/// with `t` bits on `U = e^{i·2π·𝓛/scale}`, zero the amplitudes whose phase
/// bin exceeds `ν`, uncompute the QPE, and read the (unnormalized) system
/// register where the phase register returned to `|0⟩`.
///
/// The result approximates `P_{λ≤ν}·e_i`, the exact eigenprojection — the
/// agreement is ablation A2 of the evaluation. See
/// [`gate_level_projected_row_on`] to execute the same compiled circuits on
/// a different backend (e.g. a noise model).
///
/// # Errors
///
/// Propagates simulator errors; the Laplacian dimension must be a power of
/// two at most `2^8` (pad the graph if needed).
pub fn gate_level_projected_row(
    laplacian: &CMatrix,
    vertex: usize,
    t: usize,
    scale: f64,
    nu: f64,
) -> Result<Vec<Complex64>, Error> {
    // The exact backend draws nothing from the RNG.
    let mut rng = StdRng::seed_from_u64(0);
    gate_level_projected_row_on(
        &Statevector::new(),
        &mut rng,
        laplacian,
        vertex,
        t,
        scale,
        nu,
    )
}

/// [`gate_level_projected_row`] on an explicit execution backend: the
/// forward pass (Hadamard wall, diagonalized controlled-power cascade,
/// inverse QFT) and the uncompute pass (forward QFT, inverse cascade,
/// Hadamard wall) are compiled into `qsc_sim` circuit IR and handed to
/// `backend.run`; the threshold between them is classical post-selection on
/// the phase register.
///
/// # Errors
///
/// Same contract as [`gate_level_projected_row`]. Additionally rejects
/// backends whose states are not pure-state amplitude vectors
/// ([`Backend::pure_state`]` == false`, i.e. the density-matrix backend):
/// the mid-circuit post-selection here reads amplitudes directly, which a
/// vectorized-`ρ` buffer cannot support.
pub fn gate_level_projected_row_on(
    backend: &dyn Backend,
    rng: &mut StdRng,
    laplacian: &CMatrix,
    vertex: usize,
    t: usize,
    scale: f64,
    nu: f64,
) -> Result<Vec<Complex64>, Error> {
    use qsc_linalg::eig::UnitaryEigen;
    use qsc_sim::circuit::{Circuit, Op};
    use qsc_sim::qpe::push_phase_cascade_ops;
    use qsc_sim::QuantumState;
    use std::f64::consts::TAU;

    if !backend.pure_state() {
        return Err(Error::InvalidRequest {
            context: format!(
                "gate-level projection needs a pure-state backend; `{}` executes circuits on a \
                 vectorized density matrix",
                backend.name()
            ),
        });
    }
    let n = laplacian.nrows();
    if !n.is_power_of_two() || n > 256 {
        return Err(Error::InvalidRequest {
            context: format!("gate-level path needs a power-of-two dimension ≤ 256, got {n}"),
        });
    }
    if vertex >= n {
        return Err(Error::InvalidRequest {
            context: format!("vertex {vertex} out of range"),
        });
    }
    let s = n.trailing_zeros() as usize;
    // One Hermitian eigendecomposition serves both directions of the
    // circuit: U = e^{i·2π·𝓛/scale} has the Laplacian's eigenvectors and
    // phases 2π·λ/scale, so the forward and inverse controlled-power
    // cascades are two diagonal phase passes — no repeated matrix squaring,
    // no materialized powers.
    let leig = eigh(laplacian)?;
    let ueig = UnitaryEigen {
        phases: leig.eigenvalues.iter().map(|&l| TAU * l / scale).collect(),
        eigenvectors: leig.eigenvectors,
    };

    // Compile the forward pass and execute it on the backend.
    let mut forward = Circuit::new(s + t);
    for j in 0..t {
        forward.push(Op::H(s + j))?;
    }
    push_phase_cascade_ops(&mut forward, &ueig, 1.0)?;
    forward.push_inverse_qft(s..s + t)?;
    let mut state = backend.try_prepare(s + t, vertex)?;
    backend.run(&forward, &mut state, rng)?;

    // Threshold: zero every amplitude whose phase bin maps to λ > ν.
    let bins = 1usize << t;
    let mut kept = Vec::from(state.amplitudes());
    backend.recycle(state);
    for (idx, amp) in kept.iter_mut().enumerate() {
        let m = idx >> s;
        let lambda = scale * m as f64 / bins as f64;
        if lambda > nu {
            *amp = qsc_linalg::C_ZERO;
        }
    }
    // The projected joint state is unnormalized; carry it through the
    // inverse circuit manually (all ops are linear).
    let norm: f64 = kept.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
    if norm == 0.0 {
        return Ok(vec![qsc_linalg::C_ZERO; n]);
    }
    // `norm > 0` was just checked, so the constructor cannot see a zero
    // vector — but surface the impossible case as a typed error anyway.
    let mut state = QuantumState::from_amplitudes(kept)?;

    // Compile the uncompute pass: forward QFT, inverse cascade, Hadamards.
    let mut uncompute = Circuit::new(s + t);
    uncompute.push_qft(s..s + t)?;
    push_phase_cascade_ops(&mut uncompute, &ueig, -1.0)?;
    for j in 0..t {
        uncompute.push(Op::H(s + j))?;
    }
    backend.run(&uncompute, &mut state, rng)?;

    // Read the system register where the phase register is |0⟩, restoring
    // the pre-normalization scale.
    let out: Vec<Complex64> = state.amplitudes()[..n]
        .iter()
        .map(|z| z.scale(norm))
        .collect();
    backend.recycle(state);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use qsc_cluster::metrics::matched_accuracy;
    use qsc_graph::generators::{dsbm, DsbmParams, MetaGraph};

    fn flow_instance(n: usize, seed: u64) -> qsc_graph::generators::PlantedGraph {
        dsbm(&DsbmParams {
            n,
            k: 3,
            p_intra: 0.25,
            p_inter: 0.25,
            eta_flow: 1.0,
            meta: MetaGraph::Cycle,
            seed,
            ..DsbmParams::default()
        })
        .unwrap()
    }

    fn quantum_pipeline(seed: u64, params: &QuantumParams) -> Pipeline {
        Pipeline::hermitian(3).seed(seed).quantum(params)
    }

    #[test]
    fn quantum_matches_classical_closely() {
        let inst = flow_instance(90, 5);
        let qp = QuantumParams::default();
        let q = quantum_pipeline(2, &qp).run(&inst.graph).unwrap();
        let acc = matched_accuracy(&inst.labels, &q.labels);
        assert!(acc > 0.85, "quantum accuracy {acc}");
        assert!(q.diagnostics.quantum_cost.is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = flow_instance(60, 6);
        let qp = QuantumParams::default();
        let a = quantum_pipeline(9, &qp).run(&inst.graph).unwrap();
        let b = quantum_pipeline(9, &qp).run(&inst.graph).unwrap();
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn dims_used_at_least_k_and_capped() {
        let inst = flow_instance(60, 7);
        let qp = QuantumParams {
            qpe_bits: 2,
            ..QuantumParams::default()
        };
        // Coarse bins force collisions.
        let out = quantum_pipeline(1, &qp).run(&inst.graph).unwrap();
        assert!(out.diagnostics.dims_used >= 3);
        assert!(out.diagnostics.dims_used <= 3 * qp.max_dims_factor);
    }

    #[test]
    fn rejects_scale_within_spectral_bound() {
        let inst = flow_instance(30, 8);
        let qp = QuantumParams {
            qpe_scale: 1.5,
            ..QuantumParams::default()
        };
        assert!(quantum_pipeline(0, &qp).run(&inst.graph).is_err());
    }

    #[test]
    fn density_backend_rejects_oversized_phase_register_with_typed_error() {
        // qpe_bits past the density backend's O(4^t) cap must surface as a
        // typed budget error from the embedding stage (so a resilience
        // fallback chain can degrade), not abort the process inside the
        // backend's prepare.
        use qsc_sim::DensityMatrix;
        let inst = flow_instance(30, 8);
        let qp = QuantumParams {
            qpe_bits: 14,
            ..QuantumParams::default()
        };
        let err = quantum_pipeline(0, &qp)
            .backend(DensityMatrix::new(0.05, 0.0))
            .run(&inst.graph)
            .unwrap_err();
        assert!(
            err.to_string().contains("phase-register limit"),
            "unexpected error: {err}"
        );
        assert!(
            matches!(err, Error::Sim(qsc_sim::SimError::BudgetExceeded { .. })),
            "expected a budget error, got {err:?}"
        );
        // The statevector family has no limit, and neither does the
        // zero-depolarizing density backend (its hooks short-circuit to
        // the O(2^t) closed forms — no ρ is ever built).
        assert!(quantum_pipeline(0, &qp).run(&inst.graph).is_ok());
        assert!(quantum_pipeline(0, &qp)
            .backend(DensityMatrix::new(0.0, 0.01))
            .run(&inst.graph)
            .is_ok());
    }

    #[test]
    fn noisy_backend_at_zero_noise_is_bit_identical() {
        use qsc_sim::backend::NoisyStatevector;
        let inst = flow_instance(60, 9);
        let qp = QuantumParams::default();
        let ideal = quantum_pipeline(3, &qp).run(&inst.graph).unwrap();
        let zero_noise = quantum_pipeline(3, &qp)
            .backend(NoisyStatevector::new(0.0, 0.0))
            .run(&inst.graph)
            .unwrap();
        assert_eq!(ideal.labels, zero_noise.labels);
        assert_eq!(ideal.embedding, zero_noise.embedding);
        assert_eq!(ideal.spectrum, zero_noise.spectrum);
    }

    #[test]
    fn noisy_backend_degrades_accuracy_monotonically_on_average() {
        use qsc_sim::backend::NoisyStatevector;
        let inst = flow_instance(90, 10);
        let qp = QuantumParams::default();
        let acc_at = |dep: f64| {
            let out = quantum_pipeline(4, &qp)
                .backend(NoisyStatevector::new(dep, dep))
                .run(&inst.graph)
                .unwrap();
            matched_accuracy(&inst.labels, &out.labels)
        };
        let clean = acc_at(0.0);
        let brutal = acc_at(0.2);
        assert!(clean > 0.85, "clean accuracy {clean}");
        assert!(
            brutal <= clean,
            "strong noise should not beat the clean run: {brutal} vs {clean}"
        );
    }

    #[test]
    fn gate_level_projection_agrees_with_exact() {
        use qsc_graph::normalized_hermitian_laplacian;
        // 8-vertex mixed graph (power of two).
        let inst = dsbm(&DsbmParams {
            n: 8,
            k: 2,
            p_intra: 0.9,
            p_inter: 0.9,
            eta_flow: 1.0,
            seed: 3,
            ..DsbmParams::default()
        })
        .unwrap();
        let l = normalized_hermitian_laplacian(&inst.graph, 0.25);
        let eig = qsc_linalg::eigh(&l).unwrap();
        // Pick ν safely between eigenvalue 2 and 3 and require the gap to be
        // resolvable with t bits.
        let t = 7;
        let scale = 4.0;
        let nu = (eig.eigenvalues[1] + eig.eigenvalues[2]) / 2.0;
        let resolution = scale / (1 << t) as f64;
        if eig.eigenvalues[2] - eig.eigenvalues[1] < 4.0 * resolution {
            // Degenerate instance for this seed; the test premise needs a
            // resolvable gap. (Deterministic seed: this branch is stable.)
            return;
        }
        for vertex in 0..8 {
            let got = gate_level_projected_row(&l, vertex, t, scale, nu).unwrap();
            // Exact projection P = Σ_{λ_j ≤ ν} u_j u_j† applied to e_vertex.
            let mut expected = vec![qsc_linalg::C_ZERO; 8];
            for j in 0..8 {
                if eig.eigenvalues[j] <= nu {
                    let uj = eig.eigenvectors.col(j);
                    let coeff = uj[vertex].conj();
                    for (e, u) in expected.iter_mut().zip(&uj) {
                        *e += *u * coeff;
                    }
                }
            }
            let err: f64 = got
                .iter()
                .zip(&expected)
                .map(|(a, b)| (*a - *b).norm_sqr())
                .sum::<f64>()
                .sqrt();
            assert!(err < 0.05, "vertex {vertex}: circuit vs exact err {err}");
        }
    }
}
