//! The unified error type of the pipeline: every substrate crate's error
//! enum converts into [`Error`] via `From`, so `Pipeline::run` (and every
//! stage trait) returns a single error type that callers can `?` through —
//! no `Box<dyn Error>` needed.

use qsc_cluster::ClusterError;
use qsc_graph::GraphError;
use qsc_linalg::LinalgError;
use qsc_sim::SimError;
use std::fmt;

/// Errors surfaced by the spectral-clustering pipelines.
///
/// Wraps the per-crate error enums (`qsc_linalg::LinalgError`,
/// `qsc_graph::GraphError`, `qsc_sim::SimError`,
/// `qsc_cluster::ClusterError`) behind one type with `From` impls, plus the
/// pipeline-level [`InvalidRequest`](Error::InvalidRequest) case.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A linear-algebra failure (eigensolver, shapes).
    Linalg(LinalgError),
    /// A graph-construction or generator failure.
    Graph(GraphError),
    /// A quantum-simulation failure.
    Sim(SimError),
    /// A clustering failure.
    Cluster(ClusterError),
    /// The request itself is inconsistent (e.g. `k` larger than the graph).
    InvalidRequest {
        /// Human-readable description.
        context: String,
    },
    /// A stage produced a NaN or ∞ where a finite number was required —
    /// the numerical guard on embeddings (see `docs/RESILIENCE.md`).
    NonFinite {
        /// Where the non-finite value appeared.
        context: String,
    },
}

/// Legacy name of [`Error`], kept so pre-pipeline code keeps compiling.
pub type PipelineError = Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Linalg(e) => write!(f, "linear algebra: {e}"),
            Error::Graph(e) => write!(f, "graph: {e}"),
            Error::Sim(e) => write!(f, "quantum simulation: {e}"),
            Error::Cluster(e) => write!(f, "clustering: {e}"),
            Error::InvalidRequest { context } => {
                write!(f, "invalid request: {context}")
            }
            Error::NonFinite { context } => {
                write!(f, "non-finite value: {context}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            Error::Graph(e) => Some(e),
            Error::Sim(e) => Some(e),
            Error::Cluster(e) => Some(e),
            Error::InvalidRequest { .. } | Error::NonFinite { .. } => None,
        }
    }
}

impl From<LinalgError> for Error {
    fn from(e: LinalgError) -> Self {
        Error::Linalg(e)
    }
}

impl From<GraphError> for Error {
    fn from(e: GraphError) -> Self {
        Error::Graph(e)
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        Error::Sim(e)
    }
}

impl From<ClusterError> for Error {
    fn from(e: ClusterError) -> Self {
        Error::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn conversions_and_sources() {
        let e: Error = LinalgError::NoConvergence {
            algorithm: "tql",
            iterations: 3,
            residual: None,
        }
        .into();
        assert!(e.to_string().contains("tql"));
        assert!(e.source().is_some());
        let inv = Error::InvalidRequest {
            context: "k = 0".into(),
        };
        assert!(inv.source().is_none());
    }

    #[test]
    fn legacy_alias_still_names_the_type() {
        fn takes_legacy(e: PipelineError) -> Error {
            e
        }
        let e = takes_legacy(Error::InvalidRequest {
            context: "alias".into(),
        });
        assert!(e.to_string().contains("alias"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
