//! Error type for the pipelines, wrapping the substrate errors.

use qsc_cluster::ClusterError;
use qsc_graph::GraphError;
use qsc_linalg::LinalgError;
use qsc_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the spectral-clustering pipelines.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A linear-algebra failure (eigensolver, shapes).
    Linalg(LinalgError),
    /// A graph-construction or generator failure.
    Graph(GraphError),
    /// A quantum-simulation failure.
    Sim(SimError),
    /// A clustering failure.
    Cluster(ClusterError),
    /// The request itself is inconsistent (e.g. `k` larger than the graph).
    InvalidRequest {
        /// Human-readable description.
        context: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Linalg(e) => write!(f, "linear algebra: {e}"),
            PipelineError::Graph(e) => write!(f, "graph: {e}"),
            PipelineError::Sim(e) => write!(f, "quantum simulation: {e}"),
            PipelineError::Cluster(e) => write!(f, "clustering: {e}"),
            PipelineError::InvalidRequest { context } => {
                write!(f, "invalid request: {context}")
            }
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Linalg(e) => Some(e),
            PipelineError::Graph(e) => Some(e),
            PipelineError::Sim(e) => Some(e),
            PipelineError::Cluster(e) => Some(e),
            PipelineError::InvalidRequest { .. } => None,
        }
    }
}

impl From<LinalgError> for PipelineError {
    fn from(e: LinalgError) -> Self {
        PipelineError::Linalg(e)
    }
}

impl From<GraphError> for PipelineError {
    fn from(e: GraphError) -> Self {
        PipelineError::Graph(e)
    }
}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> Self {
        PipelineError::Sim(e)
    }
}

impl From<ClusterError> for PipelineError {
    fn from(e: ClusterError) -> Self {
        PipelineError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: PipelineError = LinalgError::NoConvergence {
            algorithm: "tql",
            iterations: 3,
        }
        .into();
        assert!(e.to_string().contains("tql"));
        assert!(e.source().is_some());
        let inv = PipelineError::InvalidRequest {
            context: "k = 0".into(),
        };
        assert!(inv.source().is_none());
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PipelineError>();
    }
}
