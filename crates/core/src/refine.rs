//! Local partition refinement (Fiduccia–Mattheyses-style single-vertex
//! moves) — the classic EDA post-pass layered on a spectral partition.
//!
//! Spectral methods get the global structure right but leave locally
//! suboptimal boundaries; a greedy move pass that relocates vertices to the
//! neighboring cluster with the largest cut gain (subject to a balance
//! constraint) cleans those up. This is the standard pairing in
//! partitioning practice, and the refined rows of Table IV measure what it
//! buys on netlists.

use qsc_graph::MixedGraph;

/// Configuration for [`refine_partition`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineConfig {
    /// Maximum full passes over all vertices.
    pub max_passes: usize,
    /// Balance constraint: no cluster may shrink below
    /// `floor(balance_min_fraction · n / k)` vertices.
    pub balance_min_fraction: f64,
}

impl Default for RefineConfig {
    fn default() -> Self {
        Self {
            max_passes: 8,
            balance_min_fraction: 0.5,
        }
    }
}

/// Greedily refines a `k`-way partition by single-vertex moves, never
/// increasing the (undirected) cut weight. Returns the refined labels and
/// the total cut improvement.
///
/// # Panics
///
/// Panics if `labels.len() != g.num_vertices()` or a label is `≥ k`.
///
/// # Examples
///
/// ```
/// use qsc_core::refine::{refine_partition, RefineConfig};
/// use qsc_graph::MixedGraph;
///
/// # fn main() -> Result<(), qsc_graph::GraphError> {
/// // Two triangles; vertex 2 mislabeled into the wrong side.
/// let mut g = MixedGraph::new(6);
/// for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
///     g.add_edge(u, v, 1.0)?;
/// }
/// let bad = vec![0, 0, 1, 1, 1, 1];
/// let (fixed, gain) = refine_partition(&g, &bad, 2, &RefineConfig::default());
/// assert_eq!(fixed, vec![0, 0, 0, 1, 1, 1]);
/// assert!(gain > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn refine_partition(
    g: &MixedGraph,
    labels: &[usize],
    k: usize,
    config: &RefineConfig,
) -> (Vec<usize>, f64) {
    let n = g.num_vertices();
    assert_eq!(labels.len(), n, "refine: label length mismatch");
    assert!(labels.iter().all(|&l| l < k), "refine: label out of range");

    // Weighted neighbor lists (direction ignored for cut purposes).
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for e in g.edges() {
        adj[e.u].push((e.v, e.weight));
        adj[e.v].push((e.u, e.weight));
    }
    for a in g.arcs() {
        adj[a.from].push((a.to, a.weight));
        adj[a.to].push((a.from, a.weight));
    }

    let mut labels = labels.to_vec();
    let mut sizes = vec![0usize; k];
    for &l in &labels {
        sizes[l] += 1;
    }
    let min_size = ((config.balance_min_fraction * n as f64 / k as f64).floor() as usize).max(1);

    let mut total_gain = 0.0;
    for _ in 0..config.max_passes {
        let mut improved = false;
        for v in 0..n {
            let current = labels[v];
            if sizes[current] <= min_size {
                continue;
            }
            // Connectivity of v to each cluster.
            let mut conn = vec![0.0; k];
            for &(w, weight) in &adj[v] {
                conn[labels[w]] += weight;
            }
            // Best destination by cut gain = conn[dest] − conn[current].
            let mut best_dest = current;
            let mut best_gain = 0.0;
            for dest in 0..k {
                if dest == current {
                    continue;
                }
                let gain = conn[dest] - conn[current];
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_dest = dest;
                }
            }
            if best_dest != current {
                labels[v] = best_dest;
                sizes[current] -= 1;
                sizes[best_dest] += 1;
                total_gain += best_gain;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    (labels, total_gain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsc_graph::stats::cut_weight;

    fn two_triangles() -> MixedGraph {
        let mut g = MixedGraph::new(6);
        for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 1.0).unwrap();
        }
        g.add_arc(2, 3, 0.5).unwrap(); // weak bridge
        g
    }

    #[test]
    fn fixes_single_mislabeled_vertex() {
        let g = two_triangles();
        let bad = vec![0, 0, 1, 1, 1, 1];
        let before = cut_weight(&g, &bad);
        let (fixed, gain) = refine_partition(&g, &bad, 2, &RefineConfig::default());
        let after = cut_weight(&g, &fixed);
        assert_eq!(fixed, vec![0, 0, 0, 1, 1, 1]);
        assert!(after < before);
        assert!((before - after - gain).abs() < 1e-9, "gain accounting");
    }

    #[test]
    fn never_increases_cut() {
        use qsc_graph::generators::{random_mixed, RandomMixedParams};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for seed in 0..10u64 {
            let g = random_mixed(&RandomMixedParams {
                n: 30,
                p_undirected: 0.2,
                p_directed: 0.2,
                weight_range: (0.5, 2.0),
                seed,
            })
            .unwrap();
            let labels: Vec<usize> = (0..30).map(|_| rng.gen_range(0..3)).collect();
            let before = cut_weight(&g, &labels);
            let (refined, _) = refine_partition(&g, &labels, 3, &RefineConfig::default());
            let after = cut_weight(&g, &refined);
            assert!(after <= before + 1e-9, "seed {seed}: {before} → {after}");
        }
    }

    #[test]
    fn balance_constraint_prevents_collapse() {
        // A clique wants to be one cluster, but balance forbids emptying.
        let mut g = MixedGraph::new(6);
        for u in 0..6 {
            for v in u + 1..6 {
                g.add_edge(u, v, 1.0).unwrap();
            }
        }
        let labels = vec![0, 0, 0, 1, 1, 1];
        let cfg = RefineConfig {
            balance_min_fraction: 1.0,
            ..RefineConfig::default()
        };
        let (refined, _) = refine_partition(&g, &labels, 2, &cfg);
        let ones = refined.iter().filter(|&&l| l == 1).count();
        assert_eq!(ones, 3, "balance must hold clusters at n/k");
    }

    #[test]
    fn stable_partition_unchanged() {
        let g = two_triangles();
        let good = vec![0, 0, 0, 1, 1, 1];
        let (refined, gain) = refine_partition(&g, &good, 2, &RefineConfig::default());
        assert_eq!(refined, good);
        assert_eq!(gain, 0.0);
    }

    #[test]
    fn improves_spectral_output_or_leaves_it() {
        use crate::pipeline::Pipeline;
        use qsc_graph::generators::{netlist, NetlistParams};
        let inst = netlist(&NetlistParams {
            num_modules: 4,
            cells_per_module: 25,
            seed: 4,
            ..NetlistParams::default()
        })
        .unwrap();
        let out = Pipeline::hermitian(4).seed(1).run(&inst.graph).unwrap();
        let before = cut_weight(&inst.graph, &out.labels);
        let (refined, _) = refine_partition(&inst.graph, &out.labels, 4, &RefineConfig::default());
        let after = cut_weight(&inst.graph, &refined);
        assert!(after <= before);
    }
}
