//! The classical Hermitian spectral-clustering pipeline (the baseline the
//! quantum algorithm reproduces): exact eigendecomposition of the
//! normalized Hermitian Laplacian, lowest-`k` embedding, k-means.

use crate::config::{EigenSolver, SpectralConfig};
use crate::cost::{classical_cost, incidence_mu};
use crate::embedding::{embed_rows, eta_of_embedding, normalize_rows};
use crate::error::PipelineError;
use crate::outcome::{ClusteringOutcome, Diagnostics};
use qsc_cluster::{kmeans, KMeansConfig};
use qsc_graph::{normalized_hermitian_laplacian_csr, MixedGraph};
use qsc_linalg::eigh;
use qsc_linalg::lanczos::lanczos_lowest_k_csr;
use qsc_linalg::params::condition_number_from_eigenvalues;
use qsc_linalg::CMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Tolerance below which an eigenvalue counts as zero for κ purposes.
pub(crate) const ZERO_EIG_TOL: f64 = 1e-9;

pub(crate) fn validate_request(g: &MixedGraph, k: usize) -> Result<(), PipelineError> {
    if k == 0 {
        return Err(PipelineError::InvalidRequest {
            context: "k must be positive".into(),
        });
    }
    if g.num_vertices() < k.max(2) {
        return Err(PipelineError::InvalidRequest {
            context: format!(
                "graph with {} vertices cannot be split into {} clusters",
                g.num_vertices(),
                k
            ),
        });
    }
    Ok(())
}

/// Runs classical Hermitian spectral clustering on a mixed graph.
///
/// Steps: build `𝓛 = I − D^{-1/2}H(q)D^{-1/2}` in sparse (CSR) form,
/// eigensolve — full dense decomposition or, with
/// [`EigenSolver::LanczosCsr`], a lowest-`k` Lanczos iteration that never
/// densifies — then embed every vertex as its row in the `k` lowest
/// eigenvectors (`C^k → R^{2k}`) and run k-means.
///
/// # Errors
///
/// Returns [`PipelineError::InvalidRequest`] for inconsistent requests and
/// propagates eigensolver / clustering failures.
///
/// # Examples
///
/// ```
/// use qsc_core::{classical_spectral_clustering, SpectralConfig};
/// use qsc_graph::generators::{dsbm, DsbmParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let inst = dsbm(&DsbmParams { n: 45, k: 3, seed: 2, ..DsbmParams::default() })?;
/// let out = classical_spectral_clustering(
///     &inst.graph,
///     &SpectralConfig { k: 3, seed: 1, ..SpectralConfig::default() },
/// )?;
/// assert_eq!(out.labels.len(), 45);
/// # Ok(())
/// # }
/// ```
pub fn classical_spectral_clustering(
    g: &MixedGraph,
    config: &SpectralConfig,
) -> Result<ClusteringOutcome, PipelineError> {
    validate_request(g, config.k)?;
    let start = Instant::now();

    // The Laplacian is built sparse (O(m) construction); only the dense
    // eigensolver needs it expanded.
    let laplacian = normalized_hermitian_laplacian_csr(g, config.q);
    let (eigenvectors, spectrum): (CMatrix, Vec<f64>) = match config.eigensolver {
        EigenSolver::Dense => {
            let eig = eigh(&laplacian.to_dense())?;
            (eig.eigenvectors, eig.eigenvalues)
        }
        EigenSolver::LanczosCsr => {
            // Separate stream from the k-means seed, like the quantum path.
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x2d99_787a_66dd_12b3);
            let partial = lanczos_lowest_k_csr(&laplacian, config.k, 1e-8, &mut rng)?;
            (partial.eigenvectors, partial.eigenvalues)
        }
    };

    let selected: Vec<usize> = (0..config.k).collect();
    let mut embedding = embed_rows(&eigenvectors, &selected);
    if config.normalize_rows {
        normalize_rows(&mut embedding);
    }
    let eta = eta_of_embedding(&embedding);

    let km = kmeans(
        &embedding,
        &KMeansConfig {
            k: config.k,
            max_iter: config.max_iter,
            tol: 1e-9,
            restarts: config.restarts,
            seed: config.seed,
        },
    )?;

    let selected_eigenvalues: Vec<f64> = spectrum[..config.k].to_vec();
    let kappa = condition_number_from_eigenvalues(&selected_eigenvalues, ZERO_EIG_TOL);

    Ok(ClusteringOutcome {
        labels: km.labels,
        embedding,
        selected_eigenvalues,
        diagnostics: Diagnostics {
            kappa,
            mu_b: incidence_mu(g),
            eta_embedding: eta,
            classical_cost: classical_cost(g.num_vertices(), config.k, km.iterations),
            quantum_cost: None,
            kmeans_iterations: km.iterations,
            dims_used: config.k,
            wall_seconds: start.elapsed().as_secs_f64(),
        },
        spectrum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsc_cluster::metrics::matched_accuracy;
    use qsc_graph::generators::{dsbm, DsbmParams, MetaGraph};

    #[test]
    fn separates_density_clusters() {
        // Classic case: dense blocks, sparse in between — even without
        // direction signal.
        let inst = dsbm(&DsbmParams {
            n: 90,
            k: 3,
            p_intra: 0.5,
            p_inter: 0.05,
            eta_flow: 0.5,
            seed: 11,
            ..DsbmParams::default()
        })
        .unwrap();
        let out = classical_spectral_clustering(
            &inst.graph,
            &SpectralConfig {
                k: 3,
                seed: 4,
                ..SpectralConfig::default()
            },
        )
        .unwrap();
        let acc = matched_accuracy(&inst.labels, &out.labels);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn separates_flow_defined_clusters() {
        // The headline scenario: identical densities, clusters visible only
        // through arc orientation.
        let inst = dsbm(&DsbmParams {
            n: 120,
            k: 3,
            p_intra: 0.25,
            p_inter: 0.25,
            eta_flow: 1.0,
            meta: MetaGraph::Cycle,
            seed: 12,
            ..DsbmParams::default()
        })
        .unwrap();
        let out = classical_spectral_clustering(
            &inst.graph,
            &SpectralConfig {
                k: 3,
                seed: 4,
                ..SpectralConfig::default()
            },
        )
        .unwrap();
        let acc = matched_accuracy(&inst.labels, &out.labels);
        assert!(acc > 0.9, "flow clusters should be found, accuracy {acc}");
    }

    #[test]
    fn q_zero_fails_on_flow_only_clusters() {
        // The same instance with q = 0 (direction-blind) must do much worse:
        // this is the paper's central claim in miniature.
        let inst = dsbm(&DsbmParams {
            n: 120,
            k: 3,
            p_intra: 0.25,
            p_inter: 0.25,
            eta_flow: 1.0,
            meta: MetaGraph::Cycle,
            seed: 12,
            ..DsbmParams::default()
        })
        .unwrap();
        let blind = classical_spectral_clustering(
            &inst.graph,
            &SpectralConfig {
                k: 3,
                q: 0.0,
                seed: 4,
                ..SpectralConfig::default()
            },
        )
        .unwrap();
        let acc = matched_accuracy(&inst.labels, &blind.labels);
        assert!(acc < 0.75, "direction-blind should struggle, got {acc}");
    }

    #[test]
    fn lanczos_csr_path_matches_dense_labels() {
        // Flow-defined clusters, solved once per eigensolver: the sparse
        // Lanczos path must reproduce the dense embedding's clustering.
        let inst = dsbm(&DsbmParams {
            n: 90,
            k: 3,
            p_intra: 0.25,
            p_inter: 0.25,
            eta_flow: 1.0,
            meta: MetaGraph::Cycle,
            seed: 21,
            ..DsbmParams::default()
        })
        .unwrap();
        let dense_cfg = SpectralConfig {
            k: 3,
            seed: 4,
            ..SpectralConfig::default()
        };
        let sparse_cfg = SpectralConfig {
            eigensolver: crate::config::EigenSolver::LanczosCsr,
            ..dense_cfg.clone()
        };
        let dense = classical_spectral_clustering(&inst.graph, &dense_cfg).unwrap();
        let sparse = classical_spectral_clustering(&inst.graph, &sparse_cfg).unwrap();
        assert_eq!(sparse.spectrum.len(), 3, "partial spectrum only");
        for (a, b) in sparse
            .selected_eigenvalues
            .iter()
            .zip(&dense.selected_eigenvalues)
        {
            assert!((a - b).abs() < 1e-6, "eigenvalue mismatch: {a} vs {b}");
        }
        let agreement = matched_accuracy(&dense.labels, &sparse.labels);
        assert!(agreement > 0.95, "solver paths disagree: {agreement}");
        let acc = matched_accuracy(&inst.labels, &sparse.labels);
        assert!(acc > 0.9, "sparse path accuracy {acc}");
    }

    #[test]
    fn diagnostics_populated() {
        let inst = dsbm(&DsbmParams {
            n: 40,
            seed: 3,
            ..DsbmParams::default()
        })
        .unwrap();
        let out = classical_spectral_clustering(
            &inst.graph,
            &SpectralConfig {
                k: 3,
                ..SpectralConfig::default()
            },
        )
        .unwrap();
        assert!(out.diagnostics.classical_cost > 0.0);
        assert!(out.diagnostics.quantum_cost.is_none());
        assert!(out.diagnostics.mu_b > 0.0);
        assert_eq!(out.spectrum.len(), 40);
        assert_eq!(out.selected_eigenvalues.len(), 3);
        assert_eq!(out.embedding[0].len(), 6); // 3 complex dims → 6 real
    }

    #[test]
    fn rejects_bad_requests() {
        let g = MixedGraph::new(3);
        assert!(classical_spectral_clustering(
            &g,
            &SpectralConfig {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(classical_spectral_clustering(
            &g,
            &SpectralConfig {
                k: 5,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = dsbm(&DsbmParams {
            n: 50,
            seed: 8,
            ..DsbmParams::default()
        })
        .unwrap();
        let cfg = SpectralConfig {
            k: 3,
            seed: 21,
            ..SpectralConfig::default()
        };
        let a = classical_spectral_clustering(&inst.graph, &cfg).unwrap();
        let b = classical_spectral_clustering(&inst.graph, &cfg).unwrap();
        assert_eq!(a.labels, b.labels);
    }
}
