//! Classical embedding stages for the Hermitian spectral pipeline — exact
//! dense eigendecomposition and the sparse Lanczos partial eigensolver.

use crate::embedding::{embed_rows, normalize_rows};
use crate::error::Error;
use crate::pipeline::{Embedder, Embedding, StageContext};
use qsc_graph::MixedGraph;
use qsc_linalg::eigh;
use qsc_linalg::lanczos::lanczos_lowest_k_csr;
use qsc_linalg::{CMatrix, CsrMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Exact dense eigendecomposition (`O(n³)`) — the reference embedding
/// stage: the Laplacian is densified, fully decomposed, and every vertex
/// embedded as its row in the `k` lowest eigenvectors (`C^k → R^{2k}`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DenseEig;

impl Embedder for DenseEig {
    fn name(&self) -> &'static str {
        "dense_eig"
    }

    fn embed(
        &self,
        _g: &MixedGraph,
        laplacian: &CsrMatrix,
        ctx: &StageContext,
    ) -> Result<Embedding, Error> {
        let eig = eigh(&laplacian.to_dense())?;
        finish_classical(eig.eigenvectors, eig.eigenvalues, ctx)
    }
}

/// Lanczos on the CSR Laplacian: only the `k` lowest eigenpairs are
/// computed, with `O(nnz)` matvecs — the fast path for large sparse
/// graphs. The outcome's `spectrum` then holds only the computed
/// eigenvalues.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LanczosCsr;

impl Embedder for LanczosCsr {
    fn name(&self) -> &'static str {
        "lanczos_csr"
    }

    fn embed(
        &self,
        _g: &MixedGraph,
        laplacian: &CsrMatrix,
        ctx: &StageContext,
    ) -> Result<Embedding, Error> {
        // Separate stream from the k-means seed, like the quantum path.
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x2d99_787a_66dd_12b3);
        let partial = lanczos_lowest_k_csr(laplacian, ctx.k, 1e-8, &mut rng)?;
        finish_classical(partial.eigenvectors, partial.eigenvalues, ctx)
    }
}

/// Shared tail of the classical embedding stages: select the `k` lowest
/// eigenvectors, realize rows in `R^{2k}`, optionally row-normalize.
fn finish_classical(
    eigenvectors: CMatrix,
    spectrum: Vec<f64>,
    ctx: &StageContext,
) -> Result<Embedding, Error> {
    let selected: Vec<usize> = (0..ctx.k).collect();
    let mut rows = embed_rows(&eigenvectors, &selected);
    if ctx.normalize_rows {
        normalize_rows(&mut rows);
    }
    let selected_eigenvalues: Vec<f64> = spectrum[..ctx.k].to_vec();
    Ok(Embedding {
        rows,
        spectrum,
        selected_eigenvalues,
        dims_used: ctx.k,
        lanczos_iterations: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use qsc_cluster::metrics::matched_accuracy;
    use qsc_graph::generators::{dsbm, DsbmParams, MetaGraph};

    #[test]
    fn separates_density_clusters() {
        // Classic case: dense blocks, sparse in between — even without
        // direction signal.
        let inst = dsbm(&DsbmParams {
            n: 90,
            k: 3,
            p_intra: 0.5,
            p_inter: 0.05,
            eta_flow: 0.5,
            seed: 11,
            ..DsbmParams::default()
        })
        .unwrap();
        let out = Pipeline::hermitian(3).seed(4).run(&inst.graph).unwrap();
        let acc = matched_accuracy(&inst.labels, &out.labels);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn separates_flow_defined_clusters() {
        // The headline scenario: identical densities, clusters visible only
        // through arc orientation.
        let inst = dsbm(&DsbmParams {
            n: 120,
            k: 3,
            p_intra: 0.25,
            p_inter: 0.25,
            eta_flow: 1.0,
            meta: MetaGraph::Cycle,
            seed: 12,
            ..DsbmParams::default()
        })
        .unwrap();
        let out = Pipeline::hermitian(3).seed(4).run(&inst.graph).unwrap();
        let acc = matched_accuracy(&inst.labels, &out.labels);
        assert!(acc > 0.9, "flow clusters should be found, accuracy {acc}");
    }

    #[test]
    fn q_zero_fails_on_flow_only_clusters() {
        // The same instance with q = 0 (direction-blind) must do much worse:
        // this is the paper's central claim in miniature.
        let inst = dsbm(&DsbmParams {
            n: 120,
            k: 3,
            p_intra: 0.25,
            p_inter: 0.25,
            eta_flow: 1.0,
            meta: MetaGraph::Cycle,
            seed: 12,
            ..DsbmParams::default()
        })
        .unwrap();
        let blind = Pipeline::hermitian(3)
            .q(0.0)
            .seed(4)
            .run(&inst.graph)
            .unwrap();
        let acc = matched_accuracy(&inst.labels, &blind.labels);
        assert!(acc < 0.75, "direction-blind should struggle, got {acc}");
    }

    #[test]
    fn lanczos_csr_path_matches_dense_labels() {
        // Flow-defined clusters, solved once per eigensolver: the sparse
        // Lanczos path must reproduce the dense embedding's clustering.
        let inst = dsbm(&DsbmParams {
            n: 90,
            k: 3,
            p_intra: 0.25,
            p_inter: 0.25,
            eta_flow: 1.0,
            meta: MetaGraph::Cycle,
            seed: 21,
            ..DsbmParams::default()
        })
        .unwrap();
        let dense = Pipeline::hermitian(3).seed(4).run(&inst.graph).unwrap();
        let sparse = Pipeline::hermitian(3)
            .seed(4)
            .embedder(LanczosCsr)
            .run(&inst.graph)
            .unwrap();
        assert_eq!(sparse.spectrum.len(), 3, "partial spectrum only");
        for (a, b) in sparse
            .selected_eigenvalues
            .iter()
            .zip(&dense.selected_eigenvalues)
        {
            assert!((a - b).abs() < 1e-6, "eigenvalue mismatch: {a} vs {b}");
        }
        let agreement = matched_accuracy(&dense.labels, &sparse.labels);
        assert!(agreement > 0.95, "solver paths disagree: {agreement}");
        let acc = matched_accuracy(&inst.labels, &sparse.labels);
        assert!(acc > 0.9, "sparse path accuracy {acc}");
    }

    #[test]
    fn diagnostics_populated() {
        let inst = dsbm(&DsbmParams {
            n: 40,
            seed: 3,
            ..DsbmParams::default()
        })
        .unwrap();
        let out = Pipeline::hermitian(3).run(&inst.graph).unwrap();
        assert!(out.diagnostics.classical_cost > 0.0);
        assert!(out.diagnostics.quantum_cost.is_none());
        assert!(out.diagnostics.mu_b > 0.0);
        assert_eq!(out.spectrum.len(), 40);
        assert_eq!(out.selected_eigenvalues.len(), 3);
        assert_eq!(out.embedding[0].len(), 6); // 3 complex dims → 6 real
    }

    #[test]
    fn rejects_bad_requests() {
        let g = MixedGraph::new(3);
        assert!(Pipeline::hermitian(0).run(&g).is_err());
        assert!(Pipeline::hermitian(5).run(&g).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = dsbm(&DsbmParams {
            n: 50,
            seed: 8,
            ..DsbmParams::default()
        })
        .unwrap();
        let a = Pipeline::hermitian(3).seed(21).run(&inst.graph).unwrap();
        let b = Pipeline::hermitian(3).seed(21).run(&inst.graph).unwrap();
        assert_eq!(a.labels, b.labels);
    }
}
