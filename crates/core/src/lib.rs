//! # qsc-core — quantum spectral clustering of mixed graphs
//!
//! The primary contribution of the reproduced DAC 2021 paper: spectral
//! clustering of mixed graphs (undirected edges + directed arcs) through
//! the Hermitian Laplacian, with both the classical pipeline and the
//! simulated end-to-end quantum pipeline, plus baselines and cost models.
//!
//! # The staged pipeline
//!
//! Every recipe is one [`Pipeline`]: the builder owns Laplacian
//! construction and stage sequencing, the stages are swappable trait
//! objects:
//!
//! | stage | trait | implementations |
//! |-------|-------|-----------------|
//! | embedding | [`Embedder`] | [`DenseEig`], [`LanczosCsr`], [`LanczosDense`], [`QpeTomography`] |
//! | clustering | [`Clusterer`] | [`KMeans`], [`QMeans`] |
//!
//! ```
//! use qsc_core::{Pipeline, QuantumParams};
//! use qsc_cluster::metrics::matched_accuracy;
//! use qsc_graph::generators::{dsbm, DsbmParams, MetaGraph};
//!
//! # fn main() -> Result<(), qsc_core::Error> {
//! let inst = dsbm(&DsbmParams {
//!     n: 120, k: 3,
//!     p_intra: 0.25, p_inter: 0.25,   // identical densities: no cut signal
//!     eta_flow: 1.0, meta: MetaGraph::Cycle,
//!     seed: 10, ..DsbmParams::default()
//! })?;
//!
//! // Flow-defined clusters that a direction-blind method cannot see:
//! let hermitian = Pipeline::hermitian(3).seed(3).run(&inst.graph)?;
//! let blind = Pipeline::symmetrized(3).seed(3).run(&inst.graph)?;
//! let acc_h = matched_accuracy(&inst.labels, &hermitian.labels);
//! let acc_b = matched_accuracy(&inst.labels, &blind.labels);
//! assert!(acc_h > acc_b);
//!
//! // The simulated quantum pipeline is one builder call away:
//! let quantum = Pipeline::hermitian(3)
//!     .seed(3)
//!     .quantum(&QuantumParams::default())
//!     .run(&inst.graph)?;
//! assert!(quantum.diagnostics.quantum_cost.is_some());
//! # Ok(())
//! # }
//! ```
//!
//! Batches fan out over the rayon worker pool with
//! [`Pipeline::run_many`]; clusterer sweeps reuse each graph's staged
//! embedding through [`Pipeline::embed`] / [`Pipeline::cluster`] (or the
//! batched [`Pipeline::run_many_clusterers`]).
//!
//! # Execution backends
//!
//! The quantum stages compile their work into `qsc_sim` circuit IR and
//! observe all measurement statistics through the pipeline's execution
//! [`Backend`] — swappable with [`Pipeline::backend`] (or, from config
//! files, [`Pipeline::backend_config`] + [`BackendConfig`]):
//!
//! | backend | statistics |
//! |---------|------------|
//! | [`Statevector`] (default) | exact probabilities, bit-identical to the analytic path |
//! | [`ShardedStatevector`] | exact, shard-parallel over the worker pool (bit-identical amplitudes) |
//! | [`NoisyStatevector`] | depolarizing + readout-error channels, seeded Monte-Carlo trajectories |
//! | [`DensityMatrix`] | the same channels applied **exactly** on `ρ` — expectation values, no trajectory variance |
//! | [`ShotSampler`] | finite-shot frequencies replacing exact probabilities |
//!
//! The selection guide (memory/fidelity trade-offs) lives in
//! `docs/BACKENDS.md`.
//!
//! ```
//! use qsc_core::{NoisyStatevector, Pipeline, QuantumParams};
//! use qsc_graph::generators::{dsbm, DsbmParams};
//!
//! # fn main() -> Result<(), qsc_core::Error> {
//! let inst = dsbm(&DsbmParams { n: 45, k: 3, seed: 2, ..DsbmParams::default() })?;
//! let out = Pipeline::hermitian(3)
//!     .quantum(&QuantumParams::default())
//!     .backend(NoisyStatevector::new(0.002, 0.01)) // gate + readout error
//!     .run(&inst.graph)?;
//! assert_eq!(out.labels.len(), 45);
//! # Ok(())
//! # }
//! ```
//!
//! # Module map
//!
//! * [`pipeline`] — the [`Pipeline`] builder, stage traits and batch
//!   runner,
//! * [`classical`] / [`quantum`] / [`model_selection`] — the embedding
//!   stage implementations,
//! * [`baseline`] — comparison baselines ([`Pipeline::symmetrized`],
//!   [`baseline::adjacency_kmeans`]),
//! * [`cost`] — the classical-flops vs quantum-queries models behind the
//!   runtime figure,
//! * [`report`] — CSV/table writers for the experiment harness,
//! * [`error`] — the unified [`Error`] every stage returns,
//! * [`resilience`] — the fault-tolerant execution layer:
//!   [`ResiliencePolicy`] (retries, deadlines, budgets, backend
//!   fallbacks, fault injection) and the isolated batch runners'
//!   per-instance [`InstanceError`] reports (see `docs/RESILIENCE.md`).
//!
//! The pre-0.2 free-function entry points
//! (`classical_spectral_clustering` & co.) were deprecated in 0.2 and are
//! now removed; every recipe is a [`Pipeline`].

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod baseline;
pub mod classical;
pub mod clusterability;
pub mod config;
pub mod cost;
pub mod embedding;
pub mod error;
pub mod model_selection;
pub mod outcome;
pub mod pipeline;
pub mod quantum;
pub mod refine;
pub mod report;
pub mod resilience;
pub mod trotter;

pub use classical::{DenseEig, LanczosCsr};
pub use config::{
    BackendConfig, ClusteringConfig, EmbeddingConfig, LaplacianConfig, QuantumParams,
};
pub use error::{Error, PipelineError};
pub use model_selection::{eigengap_k, LanczosDense};
pub use outcome::{ClusteringOutcome, Diagnostics};
pub use pipeline::{Embedder, Embedding, GraphInstance, Pipeline, StageContext, StagedEmbedding};
pub use quantum::{gate_level_projected_row, gate_level_projected_row_on, QpeTomography};
pub use resilience::{BatchOutcome, FailureKind, InstanceError, ResiliencePolicy};

// The fault-injection surface, re-exported so chaos-testing call sites
// need only this crate.
pub use qsc_fault::{FaultPlan, FaultPoint};

// The clustering-stage surface, re-exported so pipeline call sites need
// only this crate.
pub use qsc_cluster::{Clusterer, KMeans, QMeans};

// The execution-backend surface, re-exported so pipeline call sites need
// only this crate.
pub use qsc_sim::backend::{Backend, NoisyStatevector, ShotSampler, Statevector};
pub use qsc_sim::{DensityMatrix, ShardedStatevector};
