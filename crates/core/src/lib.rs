//! # qsc-core — quantum spectral clustering of mixed graphs
//!
//! The primary contribution of the reproduced DAC 2021 paper: spectral
//! clustering of mixed graphs (undirected edges + directed arcs) through
//! the Hermitian Laplacian, with both the classical pipeline and the
//! simulated end-to-end quantum pipeline, plus baselines and cost models.
//!
//! * [`classical_spectral_clustering`] — exact eigendecomposition + k-means,
//! * [`quantum_spectral_clustering`] — QPE-binned projection + tomography +
//!   q-means, every noise channel driven by `qsc-sim`,
//! * [`symmetrized_spectral_clustering`] / [`baseline::adjacency_kmeans`] —
//!   the comparison baselines,
//! * [`cost`] — the classical-flops vs quantum-queries models behind the
//!   runtime figure,
//! * [`report`] — CSV/table writers for the experiment harness.
//!
//! # Examples
//!
//! The headline comparison — flow-defined clusters that a direction-blind
//! method cannot see:
//!
//! ```
//! use qsc_core::{classical_spectral_clustering, symmetrized_spectral_clustering,
//!                SpectralConfig};
//! use qsc_cluster::metrics::matched_accuracy;
//! use qsc_graph::generators::{dsbm, DsbmParams, MetaGraph};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let inst = dsbm(&DsbmParams {
//!     n: 120, k: 3,
//!     p_intra: 0.25, p_inter: 0.25,   // identical densities: no cut signal
//!     eta_flow: 1.0, meta: MetaGraph::Cycle,
//!     seed: 10, ..DsbmParams::default()
//! })?;
//! let cfg = SpectralConfig { k: 3, seed: 3, ..SpectralConfig::default() };
//! let hermitian = classical_spectral_clustering(&inst.graph, &cfg)?;
//! let blind = symmetrized_spectral_clustering(&inst.graph, &cfg)?;
//! let acc_h = matched_accuracy(&inst.labels, &hermitian.labels);
//! let acc_b = matched_accuracy(&inst.labels, &blind.labels);
//! assert!(acc_h > acc_b);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod classical;
pub mod clusterability;
pub mod config;
pub mod cost;
pub mod embedding;
pub mod error;
pub mod model_selection;
pub mod outcome;
pub mod quantum;
pub mod refine;
pub mod report;
pub mod trotter;

pub use baseline::symmetrized_spectral_clustering;
pub use classical::classical_spectral_clustering;
pub use config::{EigenSolver, QuantumParams, SpectralConfig};
pub use error::PipelineError;
pub use model_selection::{eigengap_k, lanczos_spectral_clustering};
pub use outcome::{ClusteringOutcome, Diagnostics};
pub use quantum::{gate_level_projected_row, quantum_spectral_clustering};
