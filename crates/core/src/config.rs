//! Pipeline configuration: per-stage configs consumed by
//! [`Pipeline`](crate::Pipeline), the legacy all-in-one [`SpectralConfig`],
//! and every precision parameter of the quantum simulation.
//!
//! The staged pipeline splits a run's knobs by the stage they drive:
//!
//! * [`LaplacianConfig`] — graph → Hermitian Laplacian (rotation `q`,
//!   optional symmetrization),
//! * [`EmbeddingConfig`] — Laplacian → spectral embedding (`k`, row
//!   normalization),
//! * [`ClusteringConfig`] — embedding → labels (restarts, iteration budget,
//!   tolerance).
//!
//! [`SpectralConfig`] remains the flat bundle the deprecated free functions
//! take; [`SpectralConfig::split`] converts it into the per-stage configs.

use qsc_graph::Q_CLASSICAL;
use qsc_sim::backend::{Backend, NoisyStatevector, ShotSampler, Statevector};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of the Laplacian-construction stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaplacianConfig {
    /// Hermitian rotation parameter `q` (`0` = direction-blind,
    /// [`Q_CLASSICAL`] = the `±i` encoding).
    pub q: f64,
    /// Symmetrize the graph first (arcs become undirected edges) — the
    /// direction-blind baseline. Forces the effective encoding to ignore
    /// arc orientation regardless of `q`.
    pub symmetrize: bool,
}

impl Default for LaplacianConfig {
    fn default() -> Self {
        Self {
            q: Q_CLASSICAL,
            symmetrize: false,
        }
    }
}

/// Configuration of the spectral-embedding stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingConfig {
    /// Number of clusters `k` (and baseline embedding dimension).
    pub k: usize,
    /// Row-normalize the spectral embedding (Ng–Jordan–Weiss style) before
    /// clustering.
    pub normalize_rows: bool,
}

impl Default for EmbeddingConfig {
    fn default() -> Self {
        Self {
            k: 2,
            normalize_rows: false,
        }
    }
}

/// Configuration of the clustering stage shared by every
/// [`Clusterer`](qsc_cluster::Clusterer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusteringConfig {
    /// Independent restarts; the lowest-inertia run wins.
    pub restarts: usize,
    /// Lloyd iteration budget per restart.
    pub max_iter: usize,
    /// Convergence threshold on total centroid movement.
    pub tol: f64,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        Self {
            restarts: 8,
            max_iter: 100,
            tol: 1e-9,
        }
    }
}

/// Which eigensolver the classical pipeline uses for the spectral
/// embedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EigenSolver {
    /// Full dense eigendecomposition (`O(n³)`, exact reference path).
    #[default]
    Dense,
    /// Lanczos on the CSR Laplacian: only the `k` lowest eigenpairs are
    /// computed, with `O(nnz)` matvecs — the fast path for large sparse
    /// graphs. The outcome's `spectrum` then holds only the computed
    /// eigenvalues.
    LanczosCsr,
}

/// Configuration shared by the classical and quantum pipelines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectralConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Hermitian rotation parameter `q` (`0` = direction-blind,
    /// [`Q_CLASSICAL`] = the `±i` encoding).
    pub q: f64,
    /// Row-normalize the spectral embedding (Ng–Jordan–Weiss style) before
    /// k-means.
    pub normalize_rows: bool,
    /// k-means restarts.
    pub restarts: usize,
    /// k-means iteration budget.
    pub max_iter: usize,
    /// Master seed for all randomness in the run.
    pub seed: u64,
    /// Eigensolver of the classical pipeline's embedding step.
    pub eigensolver: EigenSolver,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        Self {
            k: 2,
            q: Q_CLASSICAL,
            normalize_rows: false,
            restarts: 8,
            max_iter: 100,
            seed: 0,
            eigensolver: EigenSolver::Dense,
        }
    }
}

impl SpectralConfig {
    /// Convenience constructor for the common case.
    pub fn with_k(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }

    /// Splits the flat bundle into the per-stage configs the staged
    /// [`Pipeline`](crate::Pipeline) consumes (the `seed` and `eigensolver`
    /// fields map onto the pipeline seed and embedder choice separately).
    pub fn split(&self) -> (LaplacianConfig, EmbeddingConfig, ClusteringConfig) {
        (
            LaplacianConfig {
                q: self.q,
                symmetrize: false,
            },
            EmbeddingConfig {
                k: self.k,
                normalize_rows: self.normalize_rows,
            },
            ClusteringConfig {
                restarts: self.restarts,
                max_iter: self.max_iter,
                tol: 1e-9,
            },
        )
    }
}

/// Config-file form of the execution backend the quantum stages run on —
/// the serializable counterpart of the
/// [`Pipeline::backend`](crate::Pipeline::backend) builder call, consumed
/// by [`Pipeline::backend_config`](crate::Pipeline::backend_config).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum BackendConfig {
    /// Exact, noiseless state-vector execution (the default).
    #[default]
    Statevector,
    /// Statevector execution with the gate-fusion compile pass enabled.
    FusedStatevector,
    /// Depolarizing + readout-error statevector simulation.
    Noisy {
        /// Per-gate, per-qubit depolarizing probability.
        depolarizing: f64,
        /// Per-bit readout flip probability.
        readout_flip: f64,
    },
    /// Finite-shot measurement statistics replacing exact probabilities.
    Shots {
        /// Shots behind every probability estimate.
        shots: usize,
    },
}

impl BackendConfig {
    /// Instantiates the configured backend.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRequest`](crate::Error::InvalidRequest) for
    /// out-of-range parameters (noise probabilities outside `[0, 1]`, a
    /// zero shot budget) — config files are deserialized unvalidated, so
    /// the range checks surface here as typed errors rather than panics.
    pub fn build(&self) -> Result<Arc<dyn Backend>, crate::error::Error> {
        match *self {
            BackendConfig::Statevector => Ok(Arc::new(Statevector::new())),
            BackendConfig::FusedStatevector => Ok(Arc::new(Statevector::fused())),
            BackendConfig::Noisy {
                depolarizing,
                readout_flip,
            } => {
                if !(0.0..=1.0).contains(&depolarizing) || !(0.0..=1.0).contains(&readout_flip) {
                    return Err(crate::error::Error::InvalidRequest {
                        context: format!(
                            "noise probabilities must lie in [0, 1], got depolarizing = \
                             {depolarizing}, readout_flip = {readout_flip}"
                        ),
                    });
                }
                Ok(Arc::new(NoisyStatevector::new(depolarizing, readout_flip)))
            }
            BackendConfig::Shots { shots } => {
                if shots == 0 {
                    return Err(crate::error::Error::InvalidRequest {
                        context: "shot sampler needs a positive shot budget".into(),
                    });
                }
                Ok(Arc::new(ShotSampler::new(shots)))
            }
        }
    }
}

/// Precision parameters of the simulated quantum pipeline. Field names
/// mirror the runtime analysis (DESIGN.md §4.2–4.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantumParams {
    /// Phase-register bits `t` of the QPE; eigenvalue resolution is
    /// `qpe_scale / 2^t` (this realizes `ε_λ`).
    pub qpe_bits: usize,
    /// Eigenvalue-to-phase scale of the QPE unitary `U = e^{i·2π·𝓛/scale}`;
    /// must exceed the largest eigenvalue (2 for the normalized Laplacian).
    pub qpe_scale: f64,
    /// Shots per row for the tomography readout of the spectral embedding.
    pub tomography_shots: usize,
    /// Amplitude-estimation iterations for row-norm recovery.
    pub norm_estimation_iters: usize,
    /// q-means noise magnitude `δ`.
    pub delta: f64,
    /// Precision of the quantum distance estimation building the graph
    /// (`ε_dist`); enters the cost model. For point-cloud inputs the same
    /// parameter drives the noisy comparator of
    /// `qsc_graph::similarity::quantum_similarity_graph`.
    pub epsilon_dist: f64,
    /// Zero-substitute in the normalized incidence matrix (`ε_B`); enters
    /// the cost model.
    pub epsilon_b: f64,
    /// Cap on the number of spectral dimensions the QPE thresholding may
    /// select, as a multiple of `k` (bin collisions can pull in extra
    /// eigenvectors; this bounds the blow-up).
    pub max_dims_factor: usize,
}

impl Default for QuantumParams {
    fn default() -> Self {
        Self {
            qpe_bits: 6,
            qpe_scale: 4.0,
            tomography_shots: 4096,
            norm_estimation_iters: 256,
            delta: 0.2,
            epsilon_dist: 0.1,
            epsilon_b: 0.1,
            max_dims_factor: 3,
        }
    }
}

impl QuantumParams {
    /// The eigenvalue resolution `ε_λ = qpe_scale / 2^qpe_bits` this
    /// parameter set realizes.
    pub fn epsilon_lambda(&self) -> f64 {
        self.qpe_scale / (1u64 << self.qpe_bits) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SpectralConfig::default();
        assert_eq!(c.q, Q_CLASSICAL);
        assert!(c.restarts > 0);
        let q = QuantumParams::default();
        assert!(q.qpe_scale > 2.0, "scale must clear the [0,2] spectrum");
        assert!(q.epsilon_lambda() > 0.0);
    }

    #[test]
    fn epsilon_lambda_halves_per_bit() {
        let mut q = QuantumParams {
            qpe_bits: 3,
            ..QuantumParams::default()
        };
        let e3 = q.epsilon_lambda();
        q.qpe_bits = 4;
        assert!((q.epsilon_lambda() - e3 / 2.0).abs() < 1e-15);
    }

    #[test]
    fn with_k_sets_only_k() {
        let c = SpectralConfig::with_k(5);
        assert_eq!(c.k, 5);
        assert_eq!(c.seed, SpectralConfig::default().seed);
    }

    #[test]
    fn backend_config_builds_named_backends() {
        let name = |cfg: BackendConfig| cfg.build().expect("valid config").name();
        assert_eq!(name(BackendConfig::default()), "statevector");
        assert_eq!(name(BackendConfig::FusedStatevector), "statevector_fused");
        assert_eq!(
            name(BackendConfig::Noisy {
                depolarizing: 0.1,
                readout_flip: 0.0
            }),
            "noisy_statevector"
        );
        assert_eq!(name(BackendConfig::Shots { shots: 16 }), "shot_sampler");
    }

    #[test]
    fn backend_config_rejects_out_of_range_values() {
        assert!(BackendConfig::Shots { shots: 0 }.build().is_err());
        assert!(BackendConfig::Noisy {
            depolarizing: -0.1,
            readout_flip: 0.0
        }
        .build()
        .is_err());
        assert!(BackendConfig::Noisy {
            depolarizing: 0.0,
            readout_flip: 2.0
        }
        .build()
        .is_err());
    }
}
