//! Pipeline configuration: per-stage configs consumed by
//! [`Pipeline`](crate::Pipeline) and every precision parameter of the
//! quantum simulation.
//!
//! The staged pipeline splits a run's knobs by the stage they drive:
//!
//! * [`LaplacianConfig`] — graph → Hermitian Laplacian (rotation `q`,
//!   optional symmetrization),
//! * [`EmbeddingConfig`] — Laplacian → spectral embedding (`k`, row
//!   normalization),
//! * [`ClusteringConfig`] — embedding → labels (restarts, iteration budget,
//!   tolerance).
//!
//! (The pre-0.3 flat `SpectralConfig` bundle and its `split()` are gone;
//! every consumer configures the stages directly.)
//!
//! [`BackendConfig`] and [`QuantumParams`] additionally serialize through
//! `qsc-json` ([`ToJson`] / [`FromJson`] with unknown-field rejection) —
//! they are the parts of a pipeline recipe that experiment spec files
//! embed.

use qsc_graph::Q_CLASSICAL;
use qsc_json::{num, obj, FromJson, JsonError, ToJson, Value};
use qsc_sim::backend::{Backend, NoisyStatevector, ShotSampler, Statevector};
use qsc_sim::{DensityMatrix, RemoteBackend, ShardedStatevector};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of the Laplacian-construction stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaplacianConfig {
    /// Hermitian rotation parameter `q` (`0` = direction-blind,
    /// [`Q_CLASSICAL`] = the `±i` encoding).
    pub q: f64,
    /// Symmetrize the graph first (arcs become undirected edges) — the
    /// direction-blind baseline. Forces the effective encoding to ignore
    /// arc orientation regardless of `q`.
    pub symmetrize: bool,
}

impl Default for LaplacianConfig {
    fn default() -> Self {
        Self {
            q: Q_CLASSICAL,
            symmetrize: false,
        }
    }
}

/// Configuration of the spectral-embedding stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingConfig {
    /// Number of clusters `k` (and baseline embedding dimension).
    pub k: usize,
    /// Row-normalize the spectral embedding (Ng–Jordan–Weiss style) before
    /// clustering.
    pub normalize_rows: bool,
}

impl Default for EmbeddingConfig {
    fn default() -> Self {
        Self {
            k: 2,
            normalize_rows: false,
        }
    }
}

/// Configuration of the clustering stage shared by every
/// [`Clusterer`](qsc_cluster::Clusterer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusteringConfig {
    /// Independent restarts; the lowest-inertia run wins.
    pub restarts: usize,
    /// Lloyd iteration budget per restart.
    pub max_iter: usize,
    /// Convergence threshold on total centroid movement.
    pub tol: f64,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        Self {
            restarts: 8,
            max_iter: 100,
            tol: 1e-9,
        }
    }
}

/// Config-file form of the execution backend the quantum stages run on —
/// the serializable counterpart of the
/// [`Pipeline::backend`](crate::Pipeline::backend) builder call, consumed
/// by [`Pipeline::backend_config`](crate::Pipeline::backend_config).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum BackendConfig {
    /// Exact, noiseless state-vector execution (the default).
    #[default]
    Statevector,
    /// Statevector execution with the gate-fusion compile pass enabled.
    FusedStatevector,
    /// Exact execution sharded over the worker pool by high-qubit blocks
    /// (bit-identical amplitudes to `Statevector`).
    Sharded {
        /// Shard count (a power of two); `None` sizes the shards to the
        /// worker pool.
        shards: Option<usize>,
    },
    /// Depolarizing + readout-error statevector simulation (seeded
    /// Monte-Carlo trajectories).
    Noisy {
        /// Per-gate, per-qubit depolarizing probability.
        depolarizing: f64,
        /// Per-bit readout flip probability.
        readout_flip: f64,
    },
    /// The same noise channels applied **exactly** on the density matrix
    /// (Kraus operators, no trajectory variance; `O(4^n)` memory).
    Density {
        /// Per-gate, per-qubit depolarizing probability.
        depolarizing: f64,
        /// Per-bit readout flip probability.
        readout_flip: f64,
    },
    /// Finite-shot measurement statistics replacing exact probabilities.
    Shots {
        /// Shots behind every probability estimate.
        shots: usize,
    },
    /// Execution delegated to a remote executor service hosting the
    /// `inner` backend (`qsc-serve --backend …`). Results — including
    /// seeded trajectory noise — are bit-identical to running `inner`
    /// in-process; transport failures surface as retryable errors that
    /// never perturb the seed.
    Remote {
        /// Executor address, `host:port`.
        addr: String,
        /// The backend the executor hosts (must not itself be remote).
        inner: Box<BackendConfig>,
    },
}

impl BackendConfig {
    /// The config-file name of this backend kind (the JSON tag).
    pub fn kind_name(&self) -> &'static str {
        match self {
            BackendConfig::Statevector => "statevector",
            BackendConfig::FusedStatevector => "fused_statevector",
            BackendConfig::Sharded { .. } => "sharded",
            BackendConfig::Noisy { .. } => "noisy",
            BackendConfig::Density { .. } => "density",
            BackendConfig::Shots { .. } => "shots",
            BackendConfig::Remote { .. } => "remote",
        }
    }

    /// The kernel tier every backend built from this config executes on
    /// (`scalar` | `portable` | `avx2`) — process-wide runtime dispatch,
    /// overridable via `QSC_KERNELS`. Reported so served sweeps record
    /// which tier produced their bytes; the tiers are bit-identical, so
    /// the field is provenance, not a result discriminator.
    pub fn kernels_tier() -> &'static str {
        qsc_linalg::kernels::active().name()
    }

    /// Instantiates the configured backend.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidRequest`](crate::Error::InvalidRequest) for
    /// out-of-range parameters (noise probabilities outside `[0, 1]`, a
    /// zero shot budget) — config files are deserialized unvalidated, so
    /// the range checks surface here as typed errors rather than panics.
    pub fn build(&self) -> Result<Arc<dyn Backend>, crate::error::Error> {
        let check_noise = |depolarizing: f64, readout_flip: f64| {
            if !(0.0..=1.0).contains(&depolarizing) || !(0.0..=1.0).contains(&readout_flip) {
                return Err(crate::error::Error::InvalidRequest {
                    context: format!(
                        "noise probabilities must lie in [0, 1], got depolarizing = \
                         {depolarizing}, readout_flip = {readout_flip}"
                    ),
                });
            }
            Ok(())
        };
        match *self {
            BackendConfig::Statevector => Ok(Arc::new(Statevector::new())),
            BackendConfig::FusedStatevector => Ok(Arc::new(Statevector::fused())),
            BackendConfig::Sharded { shards } => match shards {
                None => Ok(Arc::new(ShardedStatevector::new())),
                Some(s) => {
                    if s == 0 || !s.is_power_of_two() {
                        return Err(crate::error::Error::InvalidRequest {
                            context: format!("shard count must be a power of two, got {s}"),
                        });
                    }
                    Ok(Arc::new(ShardedStatevector::with_shards(s)))
                }
            },
            BackendConfig::Noisy {
                depolarizing,
                readout_flip,
            } => {
                check_noise(depolarizing, readout_flip)?;
                Ok(Arc::new(NoisyStatevector::new(depolarizing, readout_flip)))
            }
            BackendConfig::Density {
                depolarizing,
                readout_flip,
            } => {
                check_noise(depolarizing, readout_flip)?;
                Ok(Arc::new(DensityMatrix::new(depolarizing, readout_flip)))
            }
            BackendConfig::Shots { shots } => {
                if shots == 0 {
                    return Err(crate::error::Error::InvalidRequest {
                        context: "shot sampler needs a positive shot budget".into(),
                    });
                }
                Ok(Arc::new(ShotSampler::new(shots)))
            }
            BackendConfig::Remote {
                ref addr,
                ref inner,
            } => {
                if matches!(**inner, BackendConfig::Remote { .. }) {
                    return Err(crate::error::Error::InvalidRequest {
                        context: "a remote backend cannot host another remote backend".into(),
                    });
                }
                // Building the inner backend locally validates its
                // parameters up front and exposes the trait surface
                // (exactness, purity, register limit) the remote proxy
                // must mirror; the instance itself is discarded —
                // construction is allocation-free for every kind.
                let hosted = inner.build()?;
                Ok(Arc::new(
                    RemoteBackend::new(addr.clone(), inner.to_json()).with_traits(
                        hosted.exact_statistics(),
                        hosted.pure_state(),
                        hosted.phase_register_limit(),
                    ),
                ))
            }
        }
    }
}

impl ToJson for BackendConfig {
    fn to_json(&self) -> Value {
        let noise_obj = |depolarizing: f64, readout_flip: f64| {
            obj([
                ("depolarizing", num(depolarizing)),
                ("readout_flip", num(readout_flip)),
            ])
        };
        match self {
            BackendConfig::Statevector => Value::Str("statevector".into()),
            BackendConfig::FusedStatevector => Value::Str("fused_statevector".into()),
            BackendConfig::Sharded { shards: None } => Value::Str("sharded".into()),
            BackendConfig::Sharded { shards: Some(s) } => {
                obj([("sharded", obj([("shards", num(*s as f64))]))])
            }
            BackendConfig::Noisy {
                depolarizing,
                readout_flip,
            } => obj([("noisy", noise_obj(*depolarizing, *readout_flip))]),
            BackendConfig::Density {
                depolarizing,
                readout_flip,
            } => obj([("density", noise_obj(*depolarizing, *readout_flip))]),
            BackendConfig::Shots { shots } => obj([("shots", num(*shots as f64))]),
            BackendConfig::Remote { addr, inner } => obj([(
                "remote",
                obj([
                    ("addr", Value::Str(addr.clone())),
                    ("inner", inner.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for BackendConfig {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let noise_fields = |v: &Value, context: &str| -> Result<(f64, f64), JsonError> {
            let mut nr = v.reader(context)?;
            let pair = (
                nr.f64_or("depolarizing", 0.0)?,
                nr.f64_or("readout_flip", 0.0)?,
            );
            nr.finish()?;
            Ok(pair)
        };
        match value {
            Value::Str(name) => match name.as_str() {
                "statevector" => Ok(BackendConfig::Statevector),
                "fused_statevector" => Ok(BackendConfig::FusedStatevector),
                "sharded" => Ok(BackendConfig::Sharded { shards: None }),
                other => Err(JsonError::msg(format!(
                    "backend: unknown backend `{other}` (expected statevector | \
                     fused_statevector | sharded | {{\"sharded\": …}} | {{\"noisy\": …}} | \
                     {{\"density\": …}} | {{\"shots\": …}})"
                ))),
            },
            Value::Obj(_) => {
                let mut r = value.reader("backend")?;
                let config = if let Some(noisy) = r.take("noisy") {
                    let (depolarizing, readout_flip) = noise_fields(noisy, "backend.noisy")?;
                    BackendConfig::Noisy {
                        depolarizing,
                        readout_flip,
                    }
                } else if let Some(density) = r.take("density") {
                    let (depolarizing, readout_flip) = noise_fields(density, "backend.density")?;
                    BackendConfig::Density {
                        depolarizing,
                        readout_flip,
                    }
                } else if let Some(sharded) = r.take("sharded") {
                    let mut sr = sharded.reader("backend.sharded")?;
                    let config = BackendConfig::Sharded {
                        shards: sr.opt_usize("shards")?,
                    };
                    sr.finish()?;
                    config
                } else if let Some(shots) = r.take("shots") {
                    BackendConfig::Shots {
                        shots: shots.as_usize().ok_or_else(|| {
                            JsonError::msg("backend.shots: expected a positive integer")
                        })?,
                    }
                } else if let Some(remote) = r.take("remote") {
                    let mut rr = remote.reader("backend.remote")?;
                    let addr = rr.req_str("addr")?.to_string();
                    let inner = BackendConfig::from_json(rr.required("inner")?)?;
                    rr.finish()?;
                    if matches!(inner, BackendConfig::Remote { .. }) {
                        return Err(JsonError::msg(
                            "backend.remote.inner: a remote backend cannot nest another \
                             remote backend",
                        ));
                    }
                    BackendConfig::Remote {
                        addr,
                        inner: Box::new(inner),
                    }
                } else {
                    return Err(JsonError::msg(
                        "backend: expected a `sharded`, `noisy`, `density`, `shots` or \
                         `remote` variant",
                    ));
                };
                r.finish()?;
                Ok(config)
            }
            other => Err(JsonError::msg(format!(
                "backend: expected a string or object, found {}",
                other.type_name()
            ))),
        }
    }
}

/// Applies one `backend.<field>` assignment from a sweep-axis `set` to an
/// existing backend config — how the experiment engine sweeps a noise or
/// shot parameter *across* backend kinds (a `backend.depolarizing` axis
/// drives a trajectory variant and an exact-channel variant through the
/// same grid).
///
/// The backend **kind** must already be set (by the spec's `base` or the
/// variant); fields only exist on the kinds that carry them.
///
/// # Errors
///
/// Returns [`JsonError`] for an unknown field, a mistyped value, or a
/// field the current backend kind does not have.
pub fn set_backend_field(
    config: &mut BackendConfig,
    field: &str,
    value: &Value,
) -> Result<(), JsonError> {
    let as_f64 = |v: &Value| {
        v.as_f64()
            .ok_or_else(|| JsonError::msg(format!("backend.{field}: expected a number")))
    };
    let as_usize = |v: &Value| {
        v.as_usize().ok_or_else(|| {
            JsonError::msg(format!("backend.{field}: expected a non-negative integer"))
        })
    };
    let kind_mismatch = |kind: &str| {
        JsonError::msg(format!(
            "backend.{field}: the configured `{kind}` backend has no such field (set the \
             backend kind in `base` or the variant first)"
        ))
    };
    // A sweep axis over a remote backend tunes the *hosted* backend: the
    // field travels to the executor inside the inner config.
    if let BackendConfig::Remote { inner, .. } = config {
        return set_backend_field(inner, field, value);
    }
    match field {
        "depolarizing" => match config {
            BackendConfig::Noisy { depolarizing, .. }
            | BackendConfig::Density { depolarizing, .. } => *depolarizing = as_f64(value)?,
            other => return Err(kind_mismatch(other.kind_name())),
        },
        "readout_flip" => match config {
            BackendConfig::Noisy { readout_flip, .. }
            | BackendConfig::Density { readout_flip, .. } => *readout_flip = as_f64(value)?,
            other => return Err(kind_mismatch(other.kind_name())),
        },
        "shots" => match config {
            BackendConfig::Shots { shots } => *shots = as_usize(value)?,
            other => return Err(kind_mismatch(other.kind_name())),
        },
        "shards" => match config {
            BackendConfig::Sharded { shards } => *shards = Some(as_usize(value)?),
            other => return Err(kind_mismatch(other.kind_name())),
        },
        other => {
            return Err(JsonError::msg(format!(
                "backend.{other}: no such backend field (expected depolarizing | readout_flip \
                 | shots | shards)"
            )))
        }
    }
    Ok(())
}

/// Precision parameters of the simulated quantum pipeline. Field names
/// mirror the runtime analysis (DESIGN.md §4.2–4.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantumParams {
    /// Phase-register bits `t` of the QPE; eigenvalue resolution is
    /// `qpe_scale / 2^t` (this realizes `ε_λ`).
    pub qpe_bits: usize,
    /// Eigenvalue-to-phase scale of the QPE unitary `U = e^{i·2π·𝓛/scale}`;
    /// must exceed the largest eigenvalue (2 for the normalized Laplacian).
    pub qpe_scale: f64,
    /// Shots per row for the tomography readout of the spectral embedding.
    pub tomography_shots: usize,
    /// Amplitude-estimation iterations for row-norm recovery.
    pub norm_estimation_iters: usize,
    /// q-means noise magnitude `δ`.
    pub delta: f64,
    /// Precision of the quantum distance estimation building the graph
    /// (`ε_dist`); enters the cost model. For point-cloud inputs the same
    /// parameter drives the noisy comparator of
    /// `qsc_graph::similarity::quantum_similarity_graph`.
    pub epsilon_dist: f64,
    /// Zero-substitute in the normalized incidence matrix (`ε_B`); enters
    /// the cost model.
    pub epsilon_b: f64,
    /// Cap on the number of spectral dimensions the QPE thresholding may
    /// select, as a multiple of `k` (bin collisions can pull in extra
    /// eigenvectors; this bounds the blow-up).
    pub max_dims_factor: usize,
}

impl Default for QuantumParams {
    fn default() -> Self {
        Self {
            qpe_bits: 6,
            qpe_scale: 4.0,
            tomography_shots: 4096,
            norm_estimation_iters: 256,
            delta: 0.2,
            epsilon_dist: 0.1,
            epsilon_b: 0.1,
            max_dims_factor: 3,
        }
    }
}

impl QuantumParams {
    /// The eigenvalue resolution `ε_λ = qpe_scale / 2^qpe_bits` this
    /// parameter set realizes.
    pub fn epsilon_lambda(&self) -> f64 {
        self.qpe_scale / (1u64 << self.qpe_bits) as f64
    }
}

impl ToJson for QuantumParams {
    fn to_json(&self) -> Value {
        obj([
            ("qpe_bits", num(self.qpe_bits as f64)),
            ("qpe_scale", num(self.qpe_scale)),
            ("tomography_shots", num(self.tomography_shots as f64)),
            (
                "norm_estimation_iters",
                num(self.norm_estimation_iters as f64),
            ),
            ("delta", num(self.delta)),
            ("epsilon_dist", num(self.epsilon_dist)),
            ("epsilon_b", num(self.epsilon_b)),
            ("max_dims_factor", num(self.max_dims_factor as f64)),
        ])
    }
}

impl FromJson for QuantumParams {
    /// Decodes quantum parameters; missing fields take the defaults of
    /// [`QuantumParams::default`], unknown fields are rejected.
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let d = QuantumParams::default();
        let mut r = value.reader("quantum")?;
        let params = QuantumParams {
            qpe_bits: r.usize_or("qpe_bits", d.qpe_bits)?,
            qpe_scale: r.f64_or("qpe_scale", d.qpe_scale)?,
            tomography_shots: r.usize_or("tomography_shots", d.tomography_shots)?,
            norm_estimation_iters: r.usize_or("norm_estimation_iters", d.norm_estimation_iters)?,
            delta: r.f64_or("delta", d.delta)?,
            epsilon_dist: r.f64_or("epsilon_dist", d.epsilon_dist)?,
            epsilon_b: r.f64_or("epsilon_b", d.epsilon_b)?,
            max_dims_factor: r.usize_or("max_dims_factor", d.max_dims_factor)?,
        };
        r.finish()?;
        Ok(params)
    }
}

/// Applies one `quantum.<field>` assignment from a sweep-axis `set` — the
/// path-level mutation the experiment engine uses (unlike
/// [`FromJson`], this changes a single field of an existing parameter
/// set).
///
/// # Errors
///
/// Returns [`JsonError`] for an unknown field or mistyped value.
pub fn set_quantum_field(
    params: &mut QuantumParams,
    field: &str,
    value: &Value,
) -> Result<(), JsonError> {
    let as_f64 = |v: &Value| {
        v.as_f64()
            .ok_or_else(|| JsonError::msg(format!("quantum.{field}: expected a number")))
    };
    let as_usize = |v: &Value| {
        v.as_usize().ok_or_else(|| {
            JsonError::msg(format!("quantum.{field}: expected a non-negative integer"))
        })
    };
    match field {
        "qpe_bits" => params.qpe_bits = as_usize(value)?,
        "qpe_scale" => params.qpe_scale = as_f64(value)?,
        "tomography_shots" => params.tomography_shots = as_usize(value)?,
        "norm_estimation_iters" => params.norm_estimation_iters = as_usize(value)?,
        "delta" => params.delta = as_f64(value)?,
        "epsilon_dist" => params.epsilon_dist = as_f64(value)?,
        "epsilon_b" => params.epsilon_b = as_f64(value)?,
        "max_dims_factor" => params.max_dims_factor = as_usize(value)?,
        other => {
            return Err(JsonError::msg(format!(
                "quantum.{other}: no such quantum parameter"
            )))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let lap = LaplacianConfig::default();
        assert_eq!(lap.q, Q_CLASSICAL);
        assert!(!lap.symmetrize);
        assert!(ClusteringConfig::default().restarts > 0);
        let q = QuantumParams::default();
        assert!(q.qpe_scale > 2.0, "scale must clear the [0,2] spectrum");
        assert!(q.epsilon_lambda() > 0.0);
    }

    #[test]
    fn epsilon_lambda_halves_per_bit() {
        let mut q = QuantumParams {
            qpe_bits: 3,
            ..QuantumParams::default()
        };
        let e3 = q.epsilon_lambda();
        q.qpe_bits = 4;
        assert!((q.epsilon_lambda() - e3 / 2.0).abs() < 1e-15);
    }

    #[test]
    fn backend_config_json_round_trips() {
        let configs = [
            BackendConfig::Statevector,
            BackendConfig::FusedStatevector,
            BackendConfig::Sharded { shards: None },
            BackendConfig::Sharded { shards: Some(4) },
            BackendConfig::Noisy {
                depolarizing: 0.05,
                readout_flip: 0.01,
            },
            BackendConfig::Density {
                depolarizing: 0.05,
                readout_flip: 0.01,
            },
            BackendConfig::Shots { shots: 1024 },
        ];
        for config in configs {
            let v = config.to_json();
            assert_eq!(BackendConfig::from_json(&v).unwrap(), config, "{v}");
            let reparsed = Value::parse(&v.to_string()).unwrap();
            assert_eq!(BackendConfig::from_json(&reparsed).unwrap(), config);
        }
    }

    #[test]
    fn backend_config_json_rejects_unknowns() {
        for bad in [
            r#""statevctor""#,
            r#"{"noisy": {"depolarizing": 0.1, "readout": 0.0}}"#,
            r#"{"density": {"depolarizing": 0.1, "readout": 0.0}}"#,
            r#"{"sharded": {"shard": 4}}"#,
            r#"{"shots": 16, "extra": 1}"#,
            r#"{"unknown_variant": {}}"#,
            "3",
        ] {
            let v = Value::parse(bad).unwrap();
            assert!(BackendConfig::from_json(&v).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn remote_backend_config_round_trips_and_rejects_nesting() {
        let config = BackendConfig::Remote {
            addr: "127.0.0.1:8791".into(),
            inner: Box::new(BackendConfig::Noisy {
                depolarizing: 0.05,
                readout_flip: 0.01,
            }),
        };
        let v = config.to_json();
        assert_eq!(BackendConfig::from_json(&v).unwrap(), config, "{v}");
        let reparsed = Value::parse(&v.to_string()).unwrap();
        assert_eq!(BackendConfig::from_json(&reparsed).unwrap(), config);

        let nested = Value::parse(
            r#"{"remote": {"addr": "a:1", "inner": {"remote": {"addr": "b:2", "inner": "statevector"}}}}"#,
        )
        .unwrap();
        assert!(BackendConfig::from_json(&nested).is_err());
        let missing_inner = Value::parse(r#"{"remote": {"addr": "a:1"}}"#).unwrap();
        assert!(BackendConfig::from_json(&missing_inner).is_err());
    }

    #[test]
    fn remote_backend_config_builds_and_mirrors_inner_traits() {
        let remote = |inner: BackendConfig| BackendConfig::Remote {
            addr: "127.0.0.1:1".into(),
            inner: Box::new(inner),
        };
        let exact = remote(BackendConfig::Statevector).build().unwrap();
        assert_eq!(exact.name(), "remote");
        assert!(exact.exact_statistics() && exact.pure_state());
        let noisy = remote(BackendConfig::Noisy {
            depolarizing: 0.1,
            readout_flip: 0.0,
        })
        .build()
        .unwrap();
        assert!(!noisy.exact_statistics());
        let density = remote(BackendConfig::Density {
            depolarizing: 0.1,
            readout_flip: 0.0,
        })
        .build()
        .unwrap();
        assert!(!density.pure_state());
        assert!(density.phase_register_limit().is_some());

        // Invalid inner parameters fail at build, before any connection.
        assert!(remote(BackendConfig::Shots { shots: 0 }).build().is_err());
        let nested = BackendConfig::Remote {
            addr: "a:1".into(),
            inner: Box::new(remote(BackendConfig::Statevector)),
        };
        assert!(nested.build().is_err());
    }

    #[test]
    fn remote_backend_field_assignment_reaches_the_inner_config() {
        let mut config = BackendConfig::Remote {
            addr: "127.0.0.1:1".into(),
            inner: Box::new(BackendConfig::Noisy {
                depolarizing: 0.0,
                readout_flip: 0.0,
            }),
        };
        set_backend_field(&mut config, "depolarizing", &Value::Num(0.25)).unwrap();
        let BackendConfig::Remote { inner, .. } = &config else {
            panic!("kind changed");
        };
        assert_eq!(
            **inner,
            BackendConfig::Noisy {
                depolarizing: 0.25,
                readout_flip: 0.0
            }
        );
        assert!(set_backend_field(&mut config, "shots", &Value::Num(1.0)).is_err());
    }

    #[test]
    fn quantum_params_json_round_trips_with_defaults() {
        let v = Value::parse(r#"{"qpe_bits": 4, "delta": 0.5}"#).unwrap();
        let params = QuantumParams::from_json(&v).unwrap();
        assert_eq!(params.qpe_bits, 4);
        assert_eq!(params.delta, 0.5);
        assert_eq!(
            params.tomography_shots,
            QuantumParams::default().tomography_shots
        );
        let back = QuantumParams::from_json(&params.to_json()).unwrap();
        assert_eq!(back, params);

        let bad = Value::parse(r#"{"qpe_bitss": 4}"#).unwrap();
        assert!(QuantumParams::from_json(&bad).is_err());
    }

    #[test]
    fn quantum_field_assignment() {
        let mut params = QuantumParams::default();
        set_quantum_field(&mut params, "tomography_shots", &Value::Num(64.0)).unwrap();
        assert_eq!(params.tomography_shots, 64);
        set_quantum_field(&mut params, "delta", &Value::Num(0.9)).unwrap();
        assert_eq!(params.delta, 0.9);
        assert!(set_quantum_field(&mut params, "nope", &Value::Num(1.0)).is_err());
        assert!(set_quantum_field(&mut params, "delta", &Value::Bool(true)).is_err());
    }

    #[test]
    fn backend_config_builds_named_backends() {
        let name = |cfg: BackendConfig| cfg.build().expect("valid config").name();
        assert_eq!(name(BackendConfig::default()), "statevector");
        assert_eq!(name(BackendConfig::FusedStatevector), "statevector_fused");
        assert_eq!(
            name(BackendConfig::Sharded { shards: Some(2) }),
            "sharded_statevector"
        );
        assert_eq!(
            name(BackendConfig::Sharded { shards: None }),
            "sharded_statevector"
        );
        assert_eq!(
            name(BackendConfig::Noisy {
                depolarizing: 0.1,
                readout_flip: 0.0
            }),
            "noisy_statevector"
        );
        assert_eq!(
            name(BackendConfig::Density {
                depolarizing: 0.1,
                readout_flip: 0.0
            }),
            "density_matrix"
        );
        assert_eq!(name(BackendConfig::Shots { shots: 16 }), "shot_sampler");
    }

    #[test]
    fn backend_config_rejects_out_of_range_values() {
        assert!(BackendConfig::Shots { shots: 0 }.build().is_err());
        assert!(BackendConfig::Sharded { shards: Some(3) }.build().is_err());
        assert!(BackendConfig::Sharded { shards: Some(0) }.build().is_err());
        assert!(BackendConfig::Noisy {
            depolarizing: -0.1,
            readout_flip: 0.0
        }
        .build()
        .is_err());
        assert!(BackendConfig::Noisy {
            depolarizing: 0.0,
            readout_flip: 2.0
        }
        .build()
        .is_err());
        assert!(BackendConfig::Density {
            depolarizing: 1.5,
            readout_flip: 0.0
        }
        .build()
        .is_err());
    }

    #[test]
    fn backend_field_assignment() {
        let mut cfg = BackendConfig::Density {
            depolarizing: 0.0,
            readout_flip: 0.0,
        };
        set_backend_field(&mut cfg, "depolarizing", &Value::Num(0.15)).unwrap();
        set_backend_field(&mut cfg, "readout_flip", &Value::Num(0.02)).unwrap();
        assert_eq!(
            cfg,
            BackendConfig::Density {
                depolarizing: 0.15,
                readout_flip: 0.02
            }
        );
        let mut noisy = BackendConfig::Noisy {
            depolarizing: 0.0,
            readout_flip: 0.0,
        };
        set_backend_field(&mut noisy, "depolarizing", &Value::Num(0.3)).unwrap();
        assert_eq!(
            noisy,
            BackendConfig::Noisy {
                depolarizing: 0.3,
                readout_flip: 0.0
            }
        );
        let mut shots = BackendConfig::Shots { shots: 16 };
        set_backend_field(&mut shots, "shots", &Value::Num(512.0)).unwrap();
        assert_eq!(shots, BackendConfig::Shots { shots: 512 });
        let mut sharded = BackendConfig::Sharded { shards: None };
        set_backend_field(&mut sharded, "shards", &Value::Num(8.0)).unwrap();
        assert_eq!(sharded, BackendConfig::Sharded { shards: Some(8) });

        // Fields only exist on the kinds that carry them, and names are
        // validated.
        let mut sv = BackendConfig::Statevector;
        assert!(set_backend_field(&mut sv, "depolarizing", &Value::Num(0.1)).is_err());
        assert!(set_backend_field(&mut shots, "depolarizing", &Value::Num(0.1)).is_err());
        assert!(set_backend_field(&mut noisy, "shards", &Value::Num(2.0)).is_err());
        assert!(set_backend_field(&mut noisy, "nope", &Value::Num(0.1)).is_err());
        assert!(set_backend_field(&mut noisy, "depolarizing", &Value::Bool(true)).is_err());
    }
}
