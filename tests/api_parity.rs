//! Backend-equivalence suite for the execution-backend redesign (the
//! successor of the PR 2 free-function parity suite, whose deprecated
//! wrappers are now removed).
//!
//! Pins three contracts:
//!
//! * the **default** pipeline (implicit `Statevector`) is bit-identical to
//!   an explicitly selected `Statevector` backend and to a zero-noise
//!   `NoisyStatevector` — i.e. the backend layer added **zero** numerical
//!   drift over the PR 2 outputs (the builder runs the same RNG streams and
//!   kernels as before),
//! * the serializable `BackendConfig` route (`Pipeline::backend_config`)
//!   reproduces the equivalent builder recipe exactly,
//! * the rayon-parallel `run_many` batch runner — now on the persistent
//!   worker pool, with backends shared across instances — remains
//!   indistinguishable from a sequential loop under a multi-threaded pool.
//!
//! The worker count is pinned to 4 before any pipeline runs (same
//! mechanism as `parallel_kernels.rs`), so the batch runner actually
//! exercises its parallel path even on single-core CI runners.

use qsc_suite::core::{
    BackendConfig, Clusterer, ClusteringOutcome, GraphInstance, LanczosCsr, NoisyStatevector,
    Pipeline, QMeans, QuantumParams, ShotSampler, Statevector,
};
use qsc_suite::graph::generators::{dsbm, DsbmParams, MetaGraph, PlantedGraph};
use std::sync::Arc;
use std::sync::Once;

fn setup() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        // Must precede the first kernel invocation in this process: the
        // worker count is latched on first use.
        std::env::set_var("RAYON_NUM_THREADS", "4");
    });
}

fn flow_instance(n: usize, seed: u64) -> PlantedGraph {
    dsbm(&DsbmParams {
        n,
        k: 3,
        p_intra: 0.25,
        p_inter: 0.25,
        eta_flow: 0.95,
        meta: MetaGraph::Cycle,
        seed,
        ..DsbmParams::default()
    })
    .expect("valid params")
}

/// Everything except wall-clock must agree bit-for-bit.
fn assert_outcomes_identical(a: &ClusteringOutcome, b: &ClusteringOutcome, what: &str) {
    assert_eq!(a.labels, b.labels, "{what}: labels");
    assert_eq!(a.embedding, b.embedding, "{what}: embedding");
    assert_eq!(a.spectrum, b.spectrum, "{what}: spectrum");
    assert_eq!(
        a.selected_eigenvalues, b.selected_eigenvalues,
        "{what}: selected eigenvalues"
    );
    assert_eq!(
        a.diagnostics.classical_cost, b.diagnostics.classical_cost,
        "{what}: classical cost"
    );
    assert_eq!(
        a.diagnostics.quantum_cost, b.diagnostics.quantum_cost,
        "{what}: quantum cost"
    );
    assert_eq!(a.diagnostics.kappa, b.diagnostics.kappa, "{what}: kappa");
    assert_eq!(
        a.diagnostics.dims_used, b.diagnostics.dims_used,
        "{what}: dims"
    );
}

#[test]
fn default_backend_is_bit_identical_to_explicit_statevector() {
    setup();
    let inst = flow_instance(90, 1);
    let params = QuantumParams::default();
    for (name, base) in [
        ("classical", Pipeline::hermitian(3).seed(7)),
        ("quantum", Pipeline::hermitian(3).seed(7).quantum(&params)),
    ] {
        let implicit = base.clone().run(&inst.graph).expect("implicit");
        let explicit = base
            .clone()
            .backend(Statevector::new())
            .run(&inst.graph)
            .expect("explicit");
        assert_outcomes_identical(&implicit, &explicit, name);
    }
}

#[test]
fn zero_noise_backend_is_bit_identical_to_ideal() {
    setup();
    let inst = flow_instance(60, 2);
    let params = QuantumParams::default();
    let ideal = Pipeline::hermitian(3)
        .seed(9)
        .quantum(&params)
        .run(&inst.graph)
        .expect("ideal");
    let zero_noise = Pipeline::hermitian(3)
        .seed(9)
        .quantum(&params)
        .backend(NoisyStatevector::new(0.0, 0.0))
        .run(&inst.graph)
        .expect("zero noise");
    assert_outcomes_identical(&ideal, &zero_noise, "zero-noise NoisyStatevector");
}

#[test]
fn backend_config_reproduces_builder_recipes() {
    setup();
    let inst = flow_instance(90, 3);
    // The serializable route (what spec files deserialize into) must be
    // bit-identical to the direct builder call, for every backend form.
    let params = QuantumParams::default();
    let base = || {
        Pipeline::hermitian(3)
            .seed(5)
            .embedder(LanczosCsr)
            .quantum(&params)
    };
    let cases: [(&str, BackendConfig, Pipeline); 3] = [
        (
            "statevector",
            BackendConfig::Statevector,
            base().backend(Statevector::new()),
        ),
        (
            "noisy",
            BackendConfig::Noisy {
                depolarizing: 0.01,
                readout_flip: 0.02,
            },
            base().backend(NoisyStatevector::new(0.01, 0.02)),
        ),
        (
            "shots",
            BackendConfig::Shots { shots: 512 },
            base().backend(ShotSampler::new(512)),
        ),
    ];
    for (name, config, via_builder) in cases {
        let via_config = base()
            .backend_config(&config)
            .expect("valid config")
            .run(&inst.graph)
            .expect("config run");
        let direct = via_builder.run(&inst.graph).expect("builder run");
        assert_outcomes_identical(&via_config, &direct, name);
    }
}

#[test]
fn nonexact_backends_are_deterministic_but_distinct() {
    setup();
    let inst = flow_instance(60, 4);
    let params = QuantumParams::default();
    let base = Pipeline::hermitian(3).seed(11).quantum(&params);
    let ideal = base.clone().run(&inst.graph).expect("ideal");

    let shots_a = base
        .clone()
        .backend(ShotSampler::new(1024))
        .run(&inst.graph)
        .expect("shots a");
    let shots_b = base
        .clone()
        .backend(ShotSampler::new(1024))
        .run(&inst.graph)
        .expect("shots b");
    assert_outcomes_identical(&shots_a, &shots_b, "seeded shot sampler");
    assert_ne!(
        ideal.embedding, shots_a.embedding,
        "finite shots must perturb the embedding"
    );

    let noisy_a = base
        .clone()
        .backend(NoisyStatevector::new(0.02, 0.05))
        .run(&inst.graph)
        .expect("noisy a");
    let noisy_b = base
        .clone()
        .backend(NoisyStatevector::new(0.02, 0.05))
        .run(&inst.graph)
        .expect("noisy b");
    assert_outcomes_identical(&noisy_a, &noisy_b, "seeded noisy backend");
    assert_ne!(
        ideal.embedding, noisy_a.embedding,
        "noise must perturb the embedding"
    );
}

#[test]
fn run_many_is_deterministic_under_four_workers() {
    setup();
    let graphs: Vec<PlantedGraph> = (0..6).map(|s| flow_instance(60, 40 + s)).collect();
    let batch: Vec<GraphInstance> = graphs
        .iter()
        .enumerate()
        .map(|(i, inst)| GraphInstance::with_seed(&inst.graph, i as u64))
        .collect();
    let pl = Pipeline::hermitian(3).quantum(&QuantumParams::default());

    // Sequential reference: one run() per instance, in order.
    let sequential: Vec<ClusteringOutcome> = batch
        .iter()
        .map(|inst| {
            pl.clone()
                .seed(inst.seed.expect("seeded batch"))
                .run(inst.graph)
                .expect("sequential run")
        })
        .collect();

    // The parallel batch must agree exactly, run after run.
    for round in 0..2 {
        let batched = pl.run_many(&batch).expect("run_many");
        assert_eq!(batched.len(), sequential.len());
        for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            assert_outcomes_identical(b, s, &format!("round {round}, instance {i}"));
        }
    }
}

#[test]
fn run_many_shares_one_backend_pool_across_instances() {
    setup();
    // One ShotSampler (and its buffer pool) shared by the whole parallel
    // batch: still deterministic and identical to the sequential loop,
    // because the per-instance RNG streams are independent of scheduling.
    let graphs: Vec<PlantedGraph> = (0..4).map(|s| flow_instance(50, 70 + s)).collect();
    let batch: Vec<GraphInstance> = graphs
        .iter()
        .enumerate()
        .map(|(i, inst)| GraphInstance::with_seed(&inst.graph, i as u64))
        .collect();
    let backend = Arc::new(ShotSampler::new(512));
    let pl = Pipeline::hermitian(3)
        .quantum(&QuantumParams::default())
        .backend_shared(backend);
    let batched = pl.run_many(&batch).expect("run_many");
    for (i, inst) in batch.iter().enumerate() {
        let single = pl
            .clone()
            .seed(inst.seed.expect("seeded"))
            .run(inst.graph)
            .expect("single");
        assert_outcomes_identical(
            &batched[i],
            &single,
            &format!("shared backend, instance {i}"),
        );
    }
}

#[test]
fn run_many_clusterers_matches_independent_full_runs() {
    setup();
    let graphs: Vec<PlantedGraph> = (0..3).map(|s| flow_instance(50, 60 + s)).collect();
    let batch: Vec<GraphInstance> = graphs
        .iter()
        .enumerate()
        .map(|(i, inst)| GraphInstance::with_seed(&inst.graph, i as u64))
        .collect();
    let params = QuantumParams::default();
    let pl = Pipeline::hermitian(3).quantum(&params);
    let deltas = [0.05, 0.9];
    let clusterers: Vec<Arc<dyn Clusterer>> = deltas
        .iter()
        .map(|&d| Arc::new(QMeans::new(d)) as Arc<dyn Clusterer>)
        .collect();
    let swept = pl.run_many_clusterers(&batch, &clusterers).expect("sweep");
    for (i, per_instance) in swept.iter().enumerate() {
        for (j, &delta) in deltas.iter().enumerate() {
            let full = pl
                .clone()
                .seed(i as u64)
                .clusterer(QMeans::new(delta))
                .run(&graphs[i].graph)
                .expect("full run");
            assert_outcomes_identical(
                &per_instance[j],
                &full,
                &format!("instance {i}, delta {delta}"),
            );
        }
    }
}
