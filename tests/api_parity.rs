//! API-parity tests for the staged-pipeline redesign: the `Pipeline`
//! builder must reproduce the deprecated free functions **exactly** (same
//! labels, spectra, embeddings — the wrappers delegate, and these tests
//! pin the builder translation of every legacy config), and the
//! rayon-parallel `run_many` batch runner must be indistinguishable from a
//! sequential loop under a multi-threaded pool.
//!
//! The worker count is pinned to 4 before any pipeline runs (same
//! mechanism as `parallel_kernels.rs`), so the batch runner actually
//! exercises its parallel path even on single-core CI runners.
#![allow(deprecated)] // the legacy entry points are one side of the parity

use qsc_suite::core::{
    classical_spectral_clustering, lanczos_spectral_clustering, quantum_spectral_clustering,
    symmetrized_spectral_clustering, Clusterer, ClusteringOutcome, EigenSolver, GraphInstance,
    LanczosDense, Pipeline, QMeans, QuantumParams, SpectralConfig,
};
use qsc_suite::graph::generators::{dsbm, DsbmParams, MetaGraph, PlantedGraph};
use std::sync::Arc;
use std::sync::Once;

fn setup() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        // Must precede the first kernel invocation in this process: the
        // worker count is latched on first use.
        std::env::set_var("RAYON_NUM_THREADS", "4");
    });
}

fn flow_instance(n: usize, seed: u64) -> PlantedGraph {
    dsbm(&DsbmParams {
        n,
        k: 3,
        p_intra: 0.25,
        p_inter: 0.25,
        eta_flow: 0.95,
        meta: MetaGraph::Cycle,
        seed,
        ..DsbmParams::default()
    })
    .expect("valid params")
}

/// Everything except wall-clock must agree bit-for-bit.
fn assert_outcomes_identical(a: &ClusteringOutcome, b: &ClusteringOutcome, what: &str) {
    assert_eq!(a.labels, b.labels, "{what}: labels");
    assert_eq!(a.embedding, b.embedding, "{what}: embedding");
    assert_eq!(a.spectrum, b.spectrum, "{what}: spectrum");
    assert_eq!(
        a.selected_eigenvalues, b.selected_eigenvalues,
        "{what}: selected eigenvalues"
    );
    assert_eq!(
        a.diagnostics.classical_cost, b.diagnostics.classical_cost,
        "{what}: classical cost"
    );
    assert_eq!(
        a.diagnostics.quantum_cost, b.diagnostics.quantum_cost,
        "{what}: quantum cost"
    );
    assert_eq!(a.diagnostics.kappa, b.diagnostics.kappa, "{what}: kappa");
    assert_eq!(
        a.diagnostics.dims_used, b.diagnostics.dims_used,
        "{what}: dims"
    );
}

#[test]
fn builder_reproduces_classical_free_function() {
    setup();
    let inst = flow_instance(90, 1);
    let cfg = SpectralConfig {
        k: 3,
        seed: 7,
        ..SpectralConfig::default()
    };
    let legacy = classical_spectral_clustering(&inst.graph, &cfg).expect("legacy");
    let staged = Pipeline::hermitian(3)
        .seed(7)
        .run(&inst.graph)
        .expect("staged");
    assert_outcomes_identical(&legacy, &staged, "classical dense");
}

#[test]
fn builder_reproduces_lanczos_csr_config() {
    setup();
    let inst = flow_instance(90, 2);
    let cfg = SpectralConfig {
        k: 3,
        seed: 5,
        eigensolver: EigenSolver::LanczosCsr,
        ..SpectralConfig::default()
    };
    let legacy = classical_spectral_clustering(&inst.graph, &cfg).expect("legacy");
    let staged = Pipeline::from_config(&cfg)
        .run(&inst.graph)
        .expect("staged");
    assert_outcomes_identical(&legacy, &staged, "classical lanczos-csr");
}

#[test]
fn builder_reproduces_quantum_free_function() {
    setup();
    let inst = flow_instance(60, 3);
    let cfg = SpectralConfig {
        k: 3,
        seed: 9,
        ..SpectralConfig::default()
    };
    let params = QuantumParams::default();
    let legacy = quantum_spectral_clustering(&inst.graph, &cfg, &params).expect("legacy");
    let staged = Pipeline::hermitian(3)
        .seed(9)
        .quantum(&params)
        .run(&inst.graph)
        .expect("staged");
    assert_outcomes_identical(&legacy, &staged, "quantum");
}

#[test]
fn builder_reproduces_symmetrized_free_function() {
    setup();
    let inst = flow_instance(80, 4);
    let cfg = SpectralConfig {
        k: 3,
        seed: 3,
        ..SpectralConfig::default()
    };
    let legacy = symmetrized_spectral_clustering(&inst.graph, &cfg).expect("legacy");
    let staged = Pipeline::symmetrized(3)
        .seed(3)
        .run(&inst.graph)
        .expect("staged");
    assert_outcomes_identical(&legacy, &staged, "symmetrized");
}

#[test]
fn builder_reproduces_lanczos_dense_free_function() {
    setup();
    let inst = flow_instance(70, 5);
    let cfg = SpectralConfig {
        k: 3,
        seed: 11,
        ..SpectralConfig::default()
    };
    let legacy = lanczos_spectral_clustering(&inst.graph, &cfg).expect("legacy");
    let staged = Pipeline::hermitian(3)
        .seed(11)
        .embedder(LanczosDense)
        .run(&inst.graph)
        .expect("staged");
    assert_outcomes_identical(&legacy, &staged, "lanczos dense");
}

#[test]
fn run_many_is_deterministic_under_four_workers() {
    setup();
    let graphs: Vec<PlantedGraph> = (0..6).map(|s| flow_instance(60, 40 + s)).collect();
    let batch: Vec<GraphInstance> = graphs
        .iter()
        .enumerate()
        .map(|(i, inst)| GraphInstance::with_seed(&inst.graph, i as u64))
        .collect();
    let pl = Pipeline::hermitian(3).quantum(&QuantumParams::default());

    // Sequential reference: one run() per instance, in order.
    let sequential: Vec<ClusteringOutcome> = batch
        .iter()
        .map(|inst| {
            pl.clone()
                .seed(inst.seed.expect("seeded batch"))
                .run(inst.graph)
                .expect("sequential run")
        })
        .collect();

    // The parallel batch must agree exactly, run after run.
    for round in 0..2 {
        let batched = pl.run_many(&batch).expect("run_many");
        assert_eq!(batched.len(), sequential.len());
        for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            assert_outcomes_identical(b, s, &format!("round {round}, instance {i}"));
        }
    }
}

#[test]
fn run_many_clusterers_matches_independent_full_runs() {
    setup();
    let graphs: Vec<PlantedGraph> = (0..3).map(|s| flow_instance(50, 60 + s)).collect();
    let batch: Vec<GraphInstance> = graphs
        .iter()
        .enumerate()
        .map(|(i, inst)| GraphInstance::with_seed(&inst.graph, i as u64))
        .collect();
    let params = QuantumParams::default();
    let pl = Pipeline::hermitian(3).quantum(&params);
    let deltas = [0.05, 0.9];
    let clusterers: Vec<Arc<dyn Clusterer>> = deltas
        .iter()
        .map(|&d| Arc::new(QMeans::new(d)) as Arc<dyn Clusterer>)
        .collect();
    let swept = pl.run_many_clusterers(&batch, &clusterers).expect("sweep");
    for (i, per_instance) in swept.iter().enumerate() {
        for (j, &delta) in deltas.iter().enumerate() {
            let full = pl
                .clone()
                .seed(i as u64)
                .clusterer(QMeans::new(delta))
                .run(&graphs[i].graph)
                .expect("full run");
            assert_outcomes_identical(
                &per_instance[j],
                &full,
                &format!("instance {i}, delta {delta}"),
            );
        }
    }
}
