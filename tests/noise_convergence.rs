//! Exact-vs-trajectory noise equivalence: the `DensityMatrix` backend
//! applies the depolarizing and readout channels exactly (Kraus
//! operators), and the `NoisyStatevector` backend samples trajectories of
//! the *same* channels — so trajectory means must converge to the density
//! backend's analytics at the Monte-Carlo `O(1/√N)` rate, and the
//! zero-noise density backend must be indistinguishable from the ideal
//! pipeline.

use qsc_suite::cluster::metrics::matched_accuracy;
use qsc_suite::core::{Pipeline, QuantumParams};
use qsc_suite::graph::generators::{dsbm, DsbmParams, MetaGraph};
use qsc_suite::linalg::{CMatrix, Complex64, C_ZERO};
use qsc_suite::sim::backend::{Backend, NoisyStatevector};
use qsc_suite::sim::circuit::{Circuit, Op};
use qsc_suite::sim::DensityMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A fixed circuit covering every op family the compilers emit.
fn reference_circuit() -> Circuit {
    let mut c = Circuit::new(3);
    c.push(Op::H(0)).unwrap();
    c.push(Op::T(1)).unwrap();
    c.push(Op::Ry {
        target: 1,
        theta: 0.4,
    })
    .unwrap();
    c.push(Op::Cnot {
        control: 0,
        target: 2,
    })
    .unwrap();
    c.push(Op::CPhase {
        control: 2,
        target: 0,
        theta: 0.7,
    })
    .unwrap();
    c.push(Op::Swap(0, 1)).unwrap();
    let u = CMatrix::from_rows(&[
        vec![Complex64::cis(0.2), C_ZERO],
        vec![C_ZERO, Complex64::cis(-0.5)],
    ])
    .unwrap();
    c.push(Op::BlockUnitary {
        control: Some(2),
        matrix: Arc::new(u.clone()),
    })
    .unwrap();
    c.push(Op::BlockUnitary {
        control: None,
        matrix: Arc::new(u),
    })
    .unwrap();
    c.push(Op::PhaseCascade {
        block_qubits: 1,
        phases: Arc::new(vec![0.3, -0.8]),
        sign: -1.0,
    })
    .unwrap();
    c
}

/// Mean outcome distribution over `n` seeded `NoisyStatevector`
/// trajectories of `circuit`.
fn trajectory_mean(circuit: &Circuit, p: f64, trajectories: usize) -> Vec<f64> {
    let noisy = NoisyStatevector::new(p, 0.0);
    let dim = 1usize << circuit.num_qubits();
    let mut acc = vec![0.0f64; dim];
    for seed in 0..trajectories as u64 {
        let mut rng = StdRng::seed_from_u64(7000 + seed);
        let state = noisy.execute(circuit, 0, &mut rng).unwrap();
        for (slot, a) in acc.iter_mut().zip(state.amplitudes()) {
            *slot += a.norm_sqr();
        }
        noisy.recycle(state);
    }
    acc.iter().map(|x| x / trajectories as f64).collect()
}

#[test]
fn trajectory_means_converge_to_the_exact_channel_at_monte_carlo_rate() {
    let circuit = reference_circuit();
    let p = 0.15;
    let dm = DensityMatrix::new(p, 0.0);
    let mut rng = StdRng::seed_from_u64(1);
    let rho = dm.execute(&circuit, 0, &mut rng).unwrap();
    let exact = dm.outcome_distribution(&rho);
    dm.recycle(rho);

    let l1 = |got: &[f64]| -> f64 { got.iter().zip(&exact).map(|(a, b)| (a - b).abs()).sum() };
    let errs: Vec<f64> = [32usize, 256, 2048]
        .iter()
        .map(|&n| l1(&trajectory_mean(&circuit, p, n)))
        .collect();
    // Both refined levels sit far below the coarse one, and the finest is
    // within the Monte-Carlo floor — no systematic bias between the
    // sampled channel and the Kraus channel. (Adjacent levels are not
    // required to be monotone: single MC estimates fluctuate.)
    assert!(
        errs[1] < errs[0] / 3.0 && errs[2] < errs[0] / 3.0,
        "more trajectories must cut the error well past 3×: {errs:?}"
    );
    assert!(errs[2] < 0.05, "2048 trajectories off by {}", errs[2]);
}

#[test]
fn readout_flip_sampling_converges_to_the_exact_distribution() {
    // Bell circuit under a pure readout-flip channel: the density backend's
    // closed-form distribution vs the noisy backend's per-shot bit flips.
    let mut bell = Circuit::new(2);
    bell.push(Op::H(0)).unwrap();
    bell.push(Op::Cnot {
        control: 0,
        target: 1,
    })
    .unwrap();
    let e = 0.2;
    let dm = DensityMatrix::new(0.0, e);
    let mut rng = StdRng::seed_from_u64(2);
    let rho = dm.execute(&bell, 0, &mut rng).unwrap();
    let exact = dm.outcome_distribution(&rho);
    dm.recycle(rho);
    // Closed form: diag (1/2, 0, 0, 1/2) convolved with two independent
    // flips.
    assert!((exact[0b01] - e * (1.0 - e)).abs() < 1e-12);
    assert!((exact[0b00] - 0.5 * ((1.0 - e) * (1.0 - e) + e * e)).abs() < 1e-12);

    let noisy = NoisyStatevector::new(0.0, e);
    let state = noisy.execute(&bell, 0, &mut rng).unwrap();
    let shots = 40_000usize;
    let counts = noisy.sample(&state, shots, &mut rng).unwrap();
    let mut freq = [0.0f64; 4];
    for (m, c) in counts {
        freq[m] = c as f64 / shots as f64;
    }
    let l1: f64 = freq.iter().zip(&exact).map(|(a, b)| (a - b).abs()).sum();
    assert!(l1 < 0.02, "sampled readout channel off by {l1}");
    noisy.recycle(state);
}

#[test]
fn zero_noise_density_pipeline_is_bit_identical_to_the_default() {
    // The acceptance gate: with both channel probabilities zero the
    // density backend's distribution hooks short-circuit to the same
    // closed forms the Statevector backend uses, so the full pipeline
    // output is bit-identical — labels, embedding and spectrum.
    let inst = dsbm(&DsbmParams {
        n: 60,
        k: 3,
        p_intra: 0.25,
        p_inter: 0.25,
        eta_flow: 1.0,
        meta: MetaGraph::Cycle,
        seed: 9,
        ..DsbmParams::default()
    })
    .unwrap();
    let params = QuantumParams::default();
    let ideal = Pipeline::hermitian(3)
        .seed(3)
        .quantum(&params)
        .run(&inst.graph)
        .unwrap();
    let density = Pipeline::hermitian(3)
        .seed(3)
        .quantum(&params)
        .backend(DensityMatrix::new(0.0, 0.0))
        .run(&inst.graph)
        .unwrap();
    assert_eq!(ideal.labels, density.labels);
    assert_eq!(ideal.embedding, density.embedding);
    assert_eq!(ideal.spectrum, density.spectrum);
}

#[test]
fn exact_noise_pipeline_is_deterministic_and_degrades_with_noise() {
    // The exact-channel noise figure: repeated runs are identical (no
    // trajectory variance to average out), and accuracy degrades as the
    // depolarizing probability grows.
    let inst = dsbm(&DsbmParams {
        n: 90,
        k: 3,
        p_intra: 0.25,
        p_inter: 0.25,
        eta_flow: 1.0,
        meta: MetaGraph::Cycle,
        seed: 10,
        ..DsbmParams::default()
    })
    .unwrap();
    let params = QuantumParams::default();
    let run_at = |dep: f64| {
        Pipeline::hermitian(3)
            .seed(4)
            .quantum(&params)
            .backend(DensityMatrix::new(dep, dep))
            .run(&inst.graph)
            .unwrap()
    };
    let a = run_at(0.1);
    let b = run_at(0.1);
    assert_eq!(a.labels, b.labels, "exact channel: no run-to-run variance");
    let clean = matched_accuracy(&inst.labels, &run_at(0.0).labels);
    let noisy = matched_accuracy(&inst.labels, &run_at(0.2).labels);
    assert!(clean > 0.85, "clean accuracy {clean}");
    assert!(
        noisy <= clean,
        "strong exact noise should not beat the clean run: {noisy} vs {clean}"
    );
}
