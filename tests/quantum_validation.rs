//! Cross-validation of the quantum simulation layers: the gate-level
//! circuits must agree with the analytic fast paths the pipeline uses, and
//! the injected noise must match the theory's magnitudes.

use qsc_suite::core::gate_level_projected_row;
use qsc_suite::graph::generators::{dsbm, DsbmParams};
use qsc_suite::graph::normalized_hermitian_laplacian;
use qsc_suite::linalg::expm::expi;
use qsc_suite::linalg::{eigh, CMatrix, C_ZERO};
use qsc_suite::sim::qpe::{qpe_gate_level, qpe_phase_distribution};
use qsc_suite::sim::tomography::{expected_l2_error, l2_error, tomography_complex};
use qsc_suite::sim::QuantumState;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::TAU;

/// An 8-vertex mixed graph whose Laplacian drives the circuit tests.
fn small_laplacian() -> CMatrix {
    let inst = dsbm(&DsbmParams {
        n: 8,
        k: 2,
        p_intra: 0.9,
        p_inter: 0.9,
        eta_flow: 1.0,
        seed: 21,
        ..DsbmParams::default()
    })
    .expect("dsbm");
    normalized_hermitian_laplacian(&inst.graph, 0.25)
}

#[test]
fn gate_level_qpe_matches_analytic_on_laplacian_eigenstates() {
    let l = small_laplacian();
    let eig = eigh(&l).expect("eigh");
    let scale = 4.0;
    let u = expi(&l, TAU / scale).expect("expi");
    let t = 5;
    for j in [0usize, 3, 7] {
        let input = QuantumState::from_amplitudes(eig.eigenvectors.col(j)).expect("state");
        let out = qpe_gate_level(&u, &input, t).expect("qpe");
        let got = out.marginal_high(t);
        let expected = qpe_phase_distribution(eig.eigenvalues[j] / scale, t);
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-8, "eigenstate {j}: {g} vs {e}");
        }
    }
}

#[test]
fn gate_level_projection_matches_exact_subspace_projection() {
    let l = small_laplacian();
    let eig = eigh(&l).expect("eigh");
    let t = 7;
    let scale = 4.0;
    // Threshold between the 2nd and 3rd eigenvalue, requiring a resolvable
    // gap (the seed is fixed, so this is deterministic).
    let gap = eig.eigenvalues[2] - eig.eigenvalues[1];
    let resolution = scale / (1 << t) as f64;
    assert!(
        gap > 4.0 * resolution,
        "test premise: resolvable gap (gap {gap}, resolution {resolution})"
    );
    let nu = (eig.eigenvalues[1] + eig.eigenvalues[2]) / 2.0;

    for vertex in 0..8 {
        let circuit = gate_level_projected_row(&l, vertex, t, scale, nu).expect("circuit");
        let mut exact = vec![C_ZERO; 8];
        for j in 0..8 {
            if eig.eigenvalues[j] <= nu {
                let uj = eig.eigenvectors.col(j);
                let coeff = uj[vertex].conj();
                for (e, u) in exact.iter_mut().zip(&uj) {
                    *e += *u * coeff;
                }
            }
        }
        let err: f64 = circuit
            .iter()
            .zip(&exact)
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            .sqrt();
        assert!(err < 0.05, "vertex {vertex}: err {err}");
    }
}

#[test]
fn tomography_error_matches_theory_scale() {
    // Measured ℓ2 error should track √(d/N) within a small constant.
    let mut rng = StdRng::seed_from_u64(5);
    let l = small_laplacian();
    let eig = eigh(&l).expect("eigh");
    let v = eig.eigenvectors.col(1);
    for &shots in &[1_000usize, 100_000] {
        let trials = 20;
        let mean_err: f64 = (0..trials)
            .map(|_| {
                let est = tomography_complex(&v, shots, &mut rng).expect("tomography");
                l2_error(&est, &v)
            })
            .sum::<f64>()
            / trials as f64;
        let theory = expected_l2_error(2 * v.len(), shots);
        assert!(
            mean_err < 3.0 * theory,
            "shots {shots}: measured {mean_err} vs theory scale {theory}"
        );
        // √(d/N) is the worst-case scale; concentrated vectors do better,
        // but *some* noise must be present.
        assert!(mean_err > 0.0, "shots {shots}: no noise injected at all");
    }
}

#[test]
fn laplacian_unitary_preserves_eigenvectors() {
    // e^{i·2π·𝓛/4} must act as a pure phase on each eigenvector.
    let l = small_laplacian();
    let eig = eigh(&l).expect("eigh");
    let u = expi(&l, TAU / 4.0).expect("expi");
    for j in 0..8 {
        let v = eig.eigenvectors.col(j);
        let uv = u.matvec(&v);
        let phase = qsc_suite::linalg::Complex64::cis(eig.eigenvalues[j] * TAU / 4.0);
        for (a, b) in uv.iter().zip(&v) {
            assert!((*a - *b * phase).abs() < 1e-9);
        }
    }
}

#[test]
fn qpe_bits_improve_eigenvalue_estimates_monotonically() {
    // The F3 shape in miniature: mean |λ̂ − λ| halves per added bit.
    use qsc_suite::sim::PhaseEstimator;
    let l = small_laplacian();
    let eig = eigh(&l).expect("eigh");
    let mut prev = f64::INFINITY;
    for t in [2usize, 4, 6, 8] {
        let est = PhaseEstimator::new(4.0, t).expect("estimator");
        let err: f64 = eig
            .eigenvalues
            .iter()
            .map(|&lam| (est.round(lam) - lam).abs())
            .sum::<f64>()
            / 8.0;
        assert!(err <= prev + 1e-12, "t={t}: {err} vs prev {prev}");
        assert!(err <= est.resolution() / 2.0 + 1e-12);
        prev = err;
    }
}
