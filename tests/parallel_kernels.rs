//! Behavioral-equivalence tests for the parallel / cache-blocked compute
//! kernels: every optimized path must match its serial reference to 1e-12
//! on random inputs — large enough to actually take the parallel path.
//!
//! The worker count is pinned to 4 before any kernel runs, so these tests
//! exercise the multi-threaded code paths even on single-core CI runners
//! (the kernels are designed to be thread-count independent, so the
//! assertions are exact-tolerance, not statistical).

use qsc_suite::linalg::lanczos::{lanczos_lowest_k, lanczos_lowest_k_csr};
use qsc_suite::linalg::{CMatrix, Complex64, CsrMatrix, C_ZERO};
use qsc_suite::sim::qpe::{qpe_gate_level, qpe_gate_level_repeated_squaring};
use qsc_suite::sim::QuantumState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Once;

fn setup() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        // Must precede the first kernel invocation in this process: the
        // worker count is latched on first use.
        std::env::set_var("RAYON_NUM_THREADS", "4");
    });
}

fn random_state(qubits: usize, seed: u64) -> QuantumState {
    let mut rng = StdRng::seed_from_u64(seed);
    let amps: Vec<Complex64> = (0..1usize << qubits)
        .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    QuantumState::from_amplitudes(amps).expect("non-zero random state")
}

fn max_amp_diff(a: &QuantumState, b: &QuantumState) -> f64 {
    a.amplitudes()
        .iter()
        .zip(b.amplitudes())
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

/// The seed implementation of `apply_single`: visit all indices, branch.
fn apply_single_ref(
    state: &QuantumState,
    gate: &[[Complex64; 2]; 2],
    qubit: usize,
) -> QuantumState {
    let mut amps = state.amplitudes().to_vec();
    let bit = 1usize << qubit;
    for i in 0..amps.len() {
        if i & bit == 0 {
            let j = i | bit;
            let a0 = amps[i];
            let a1 = amps[j];
            amps[i] = gate[0][0] * a0 + gate[0][1] * a1;
            amps[j] = gate[1][0] * a0 + gate[1][1] * a1;
        }
    }
    QuantumState::from_amplitudes(amps).expect("unitary preserves norm")
}

/// The seed implementation of `apply_controlled_single`.
fn apply_controlled_ref(
    state: &QuantumState,
    gate: &[[Complex64; 2]; 2],
    control: usize,
    target: usize,
) -> QuantumState {
    let mut amps = state.amplitudes().to_vec();
    let cbit = 1usize << control;
    let tbit = 1usize << target;
    for i in 0..amps.len() {
        if i & cbit != 0 && i & tbit == 0 {
            let j = i | tbit;
            let a0 = amps[i];
            let a1 = amps[j];
            amps[i] = gate[0][0] * a0 + gate[0][1] * a1;
            amps[j] = gate[1][0] * a0 + gate[1][1] * a1;
        }
    }
    QuantumState::from_amplitudes(amps).expect("unitary preserves norm")
}

#[test]
fn parallel_matmul_matches_serial_reference() {
    setup();
    let mut rng = StdRng::seed_from_u64(101);
    // Sizes straddling the parallel threshold, including non-square and
    // non-multiple-of-tile shapes.
    for (m, k, n) in [
        (7usize, 9usize, 5usize),
        (64, 64, 64),
        (97, 123, 81),
        (150, 150, 150),
    ] {
        let a = CMatrix::random(m, k, &mut rng);
        let b = CMatrix::random(k, n, &mut rng);
        let fast = a.matmul(&b);
        let slow = a.matmul_serial(&b);
        let diff = (&fast - &slow).max_norm();
        assert!(diff <= 1e-12, "matmul {m}x{k}x{n}: diff {diff}");
    }
}

#[test]
fn parallel_adjoint_and_norms_match_definitions() {
    setup();
    let mut rng = StdRng::seed_from_u64(102);
    for (m, n) in [(5usize, 8usize), (130, 311), (400, 400)] {
        let a = CMatrix::random(m, n, &mut rng);
        let adj = a.adjoint();
        let adj_ref = CMatrix::from_fn(n, m, |i, j| a[(j, i)].conj());
        assert_eq!(adj, adj_ref, "adjoint {m}x{n}");

        let serial_max = a.as_slice().iter().map(|z| z.abs()).fold(0.0, f64::max);
        assert!((a.max_norm() - serial_max).abs() <= 1e-12);
        let serial_fro = a
            .as_slice()
            .iter()
            .map(|z| z.norm_sqr())
            .sum::<f64>()
            .sqrt();
        assert!((a.frobenius_norm() - serial_fro).abs() <= 1e-12 * serial_fro.max(1.0));
    }
}

#[test]
fn parallel_matvec_and_gram_match_serial() {
    setup();
    let mut rng = StdRng::seed_from_u64(103);
    for n in [6usize, 90, 300] {
        let a = CMatrix::random(n, n, &mut rng);
        let x: Vec<Complex64> = (0..n)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let y = a.matvec(&x);
        for (i, yi) in y.iter().enumerate() {
            let mut acc = C_ZERO;
            for (j, xj) in x.iter().enumerate() {
                acc += a[(i, j)] * *xj;
            }
            assert!((*yi - acc).abs() <= 1e-12, "matvec row {i} at n={n}");
        }
        let gram = a.gram();
        let gram_ref = a.adjoint().matmul_serial(&a);
        assert!(
            (&gram - &gram_ref).max_norm() <= 1e-12,
            "gram deviates at n={n}"
        );
    }
}

#[test]
fn csr_matvec_matches_dense_on_large_sparse() {
    setup();
    let mut rng = StdRng::seed_from_u64(104);
    let n = 600;
    // ~15% fill Hermitian matrix, nnz comfortably past the parallel gate.
    let mut dense = CMatrix::zeros(n, n);
    for i in 0..n {
        dense[(i, i)] = Complex64::real(rng.gen_range(-1.0..1.0));
        for j in (i + 1)..n {
            if rng.gen::<f64>() < 0.15 {
                let v = Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                dense[(i, j)] = v;
                dense[(j, i)] = v.conj();
            }
        }
    }
    let sparse = CsrMatrix::from_dense(&dense, 0.0);
    assert!(sparse.is_hermitian());
    let x: Vec<Complex64> = (0..n)
        .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    let yd = dense.matvec(&x);
    let ys = sparse.matvec(&x);
    for (a, b) in yd.iter().zip(&ys) {
        assert!((*a - *b).abs() <= 1e-12);
    }
}

#[test]
fn stride_gate_kernels_match_branchy_reference() {
    setup();
    let qubits = 17; // 131072 amplitudes: all kernels take the parallel path
    let gates = [qsc_suite::sim::gates::h(), qsc_suite::sim::gates::t()];
    for (gi, gate) in gates.iter().enumerate() {
        for &q in &[0usize, 1, 8, qubits - 2, qubits - 1] {
            let state = random_state(qubits, 200 + gi as u64);
            let mut fast = state.clone();
            fast.apply_single(gate, q).unwrap();
            let slow = apply_single_ref(&state, gate, q);
            assert!(
                max_amp_diff(&fast, &slow) <= 1e-12,
                "apply_single qubit {q} gate {gi}"
            );
        }
    }
}

#[test]
fn stride_controlled_kernels_match_branchy_reference() {
    setup();
    let qubits = 17;
    let gate = qsc_suite::sim::gates::x();
    for &(c, t) in &[
        (0usize, 1usize),
        (0, qubits - 1),
        (qubits - 1, 0),
        (5, 11),
        (11, 5),
        (qubits - 2, qubits - 1),
        (qubits - 1, qubits - 2),
    ] {
        let state = random_state(qubits, 300);
        let mut fast = state.clone();
        fast.apply_controlled_single(&gate, c, t).unwrap();
        let slow = apply_controlled_ref(&state, &gate, c, t);
        assert!(
            max_amp_diff(&fast, &slow) <= 1e-12,
            "apply_controlled_single c={c} t={t}"
        );
    }
}

#[test]
fn stride_controlled_phase_matches_branchy_reference() {
    setup();
    let qubits = 17;
    let theta = 0.7318;
    for &(c, t) in &[
        (0usize, 1usize),
        (3, 12),
        (12, 3),
        (qubits - 1, 2),
        (qubits - 2, qubits - 1),
    ] {
        let state = random_state(qubits, 400);
        let mut fast = state.clone();
        fast.apply_controlled_phase(c, t, theta).unwrap();
        // Seed reference: scan every index, branch on the mask.
        let mask = (1usize << c) | (1usize << t);
        let phase = Complex64::cis(theta);
        let mut amps = state.amplitudes().to_vec();
        for (i, a) in amps.iter_mut().enumerate() {
            if i & mask == mask {
                *a *= phase;
            }
        }
        let slow = QuantumState::from_amplitudes(amps).unwrap();
        assert!(
            max_amp_diff(&fast, &slow) <= 1e-12,
            "controlled_phase c={c} t={t}"
        );
    }
}

#[test]
fn parallel_block_unitary_matches_serial_blocks() {
    setup();
    let mut rng = StdRng::seed_from_u64(500);
    let block_qubits = 4;
    let total_qubits = 14;
    let u = CMatrix::random_unitary(1 << block_qubits, &mut rng);
    for control in [None, Some(block_qubits), Some(total_qubits - 1)] {
        let state = random_state(total_qubits, 501);
        let mut fast = state.clone();
        fast.apply_controlled_block_unitary(&u, control).unwrap();
        // Reference: per-block dense matvec, sequentially.
        let block = 1usize << block_qubits;
        let mut amps = state.amplitudes().to_vec();
        for (b, chunk) in amps.chunks_mut(block).enumerate() {
            if let Some(c) = control {
                if b & (1usize << (c - block_qubits)) == 0 {
                    continue;
                }
            }
            let applied = u.matvec(chunk);
            chunk.copy_from_slice(&applied);
        }
        let slow = QuantumState::from_amplitudes(amps).unwrap();
        assert!(
            max_amp_diff(&fast, &slow) <= 1e-12,
            "block unitary control {control:?}"
        );
    }
}

#[test]
fn matmul_routed_block_unitary_matches_serial_blocks() {
    setup();
    let mut rng = StdRng::seed_from_u64(520);
    // Large enough that the uncontrolled path takes the S·Uᵀ matmul route
    // (num_blocks · block² = 2^22 ≫ the parallel threshold).
    let block_qubits = 6;
    let total_qubits = 16;
    let u = CMatrix::random_unitary(1 << block_qubits, &mut rng);
    let state = random_state(total_qubits, 521);
    let mut fast = state.clone();
    fast.apply_block_unitary(&u).unwrap();
    // Reference: per-block dense matvec, sequentially.
    let block = 1usize << block_qubits;
    let mut amps = state.amplitudes().to_vec();
    for chunk in amps.chunks_mut(block) {
        let applied = u.matvec(chunk);
        chunk.copy_from_slice(&applied);
    }
    let slow = QuantumState::from_amplitudes(amps).unwrap();
    assert!(
        max_amp_diff(&fast, &slow) <= 1e-12,
        "matmul-routed block unitary diff {}",
        max_amp_diff(&fast, &slow)
    );
}

#[test]
fn qpe_phase_distribution_unchanged_by_eigendecompose_once_rewrite() {
    setup();
    let mut rng = StdRng::seed_from_u64(600);
    // A non-trivial Hermitian evolution operator on 3 system qubits.
    let h = CMatrix::random_hermitian(8, &mut rng);
    let u = qsc_suite::linalg::expm::expi(&h, 0.9).unwrap();
    let input = {
        let amps: Vec<Complex64> = (0..8)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        QuantumState::from_amplitudes(amps).unwrap()
    };
    for t in [2usize, 5, 7] {
        let fast = qpe_gate_level(&u, &input, t).unwrap();
        let reference = qpe_gate_level_repeated_squaring(&u, &input, t).unwrap();
        let pf = fast.marginal_high(t);
        let pr = reference.marginal_high(t);
        for (m, (a, b)) in pf.iter().zip(&pr).enumerate() {
            assert!((a - b).abs() < 1e-9, "t={t}, outcome {m}: {a} vs {b}");
        }
    }
}

#[test]
fn qpe_exact_phases_still_deterministic_after_rewrite() {
    setup();
    use std::f64::consts::TAU;
    // Exactly representable eigenphase: the rewrite must keep the outcome
    // a delta distribution.
    let u = CMatrix::from_diag(&[Complex64::real(1.0), Complex64::cis(TAU * 5.0 / 16.0)]);
    let input = QuantumState::basis_state(1, 1);
    let out = qpe_gate_level(&u, &input, 4).unwrap();
    let probs = out.marginal_high(4);
    assert!((probs[5] - 1.0).abs() < 1e-9, "distribution {probs:?}");
}

#[test]
fn lanczos_csr_matches_dense_lanczos_and_is_sparse() {
    setup();
    let mut rng = StdRng::seed_from_u64(700);
    // A banded Hermitian matrix: genuinely sparse at n=500.
    let n = 500;
    let mut dense = CMatrix::zeros(n, n);
    for i in 0..n {
        dense[(i, i)] = Complex64::real(2.0 + rng.gen_range(-0.1..0.1));
        for d in 1..=3usize {
            if i + d < n {
                let v = Complex64::new(rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5));
                dense[(i, i + d)] = v;
                dense[(i + d, i)] = v.conj();
            }
        }
    }
    let sparse = CsrMatrix::from_dense(&dense, 0.0);
    assert!(sparse.density() < 0.02, "density {}", sparse.density());
    let k = 4;
    let pd = lanczos_lowest_k(&dense, k, 1e-8, &mut StdRng::seed_from_u64(701)).unwrap();
    let ps = lanczos_lowest_k_csr(&sparse, k, 1e-8, &mut StdRng::seed_from_u64(701)).unwrap();
    for (a, b) in pd.eigenvalues.iter().zip(&ps.eigenvalues) {
        assert!((a - b).abs() < 1e-8, "lanczos eigenvalue {a} vs {b}");
    }
    // Identical RNG seed and identical matvec values → identical Krylov
    // spaces; the Ritz vectors must agree too.
    for j in 0..k {
        let vd = pd.eigenvectors.col(j);
        let vs = ps.eigenvectors.col(j);
        let overlap: f64 = qsc_suite::linalg::vector::cdot(&vd, &vs).abs();
        assert!(
            (overlap - 1.0).abs() < 1e-6,
            "Ritz vector {j} overlap {overlap}"
        );
    }
}
