//! Boundary and failure-injection tests across the stack: tiny graphs,
//! isolated vertices, degenerate requests, weighted graphs, and the
//! error-path contracts a downstream user will hit first.
//!
//! Everything runs through the staged `Pipeline` builder — the only entry
//! point since the deprecated free functions were removed.

use qsc_suite::cluster::{kmeans, KMeansConfig};
use qsc_suite::core::{LanczosDense, Pipeline, PipelineError, QuantumParams};
use qsc_suite::graph::{
    hermitian_adjacency, normalized_hermitian_laplacian, GraphError, MixedGraph,
};
use qsc_suite::linalg::{eigh, eigvalsh, CMatrix};

#[test]
fn smallest_legal_graph_clusters() {
    // Two vertices, one arc, k = 2.
    let mut g = MixedGraph::new(2);
    g.add_arc(0, 1, 1.0).expect("arc");
    let out = Pipeline::hermitian(2).seed(1).run(&g).expect("pipeline");
    assert_eq!(out.labels.len(), 2);
    assert_ne!(out.labels[0], out.labels[1]);
}

#[test]
fn graph_with_isolated_vertices_survives_both_pipelines() {
    // A triangle plus two isolated vertices; k = 2 groups the isolateds by
    // their identical (zero-ish) embedding rows.
    let mut g = MixedGraph::new(5);
    g.add_edge(0, 1, 1.0).expect("edge");
    g.add_edge(1, 2, 1.0).expect("edge");
    g.add_edge(0, 2, 1.0).expect("edge");
    let classical = Pipeline::hermitian(2).seed(1).run(&g).expect("classical");
    assert_eq!(classical.labels.len(), 5);
    let quantum = Pipeline::hermitian(2)
        .seed(1)
        .quantum(&QuantumParams::default())
        .run(&g)
        .expect("quantum with isolated vertices");
    assert_eq!(quantum.labels.len(), 5);
}

#[test]
fn empty_graph_pipelines_do_not_panic() {
    // No connections at all: the Laplacian is the identity, every vertex
    // identical. The pipelines must return *something* labeled, not panic.
    let g = MixedGraph::new(6);
    let out = Pipeline::hermitian(2).seed(1).run(&g).expect("empty graph");
    assert_eq!(out.labels.len(), 6);
}

#[test]
fn k_equals_n_assigns_every_vertex_its_own_cluster_capacity() {
    let mut g = MixedGraph::new(4);
    g.add_edge(0, 1, 1.0).expect("edge");
    g.add_arc(2, 3, 1.0).expect("arc");
    let out = Pipeline::hermitian(4).seed(1).run(&g).expect("k = n");
    assert!(out.labels.iter().all(|&l| l < 4));
}

#[test]
fn invalid_requests_surface_typed_errors() {
    let g = MixedGraph::new(3);
    let err = Pipeline::hermitian(0).run(&g).unwrap_err();
    assert!(matches!(err, PipelineError::InvalidRequest { .. }));
    let err = Pipeline::hermitian(9)
        .embedder(LanczosDense)
        .run(&g)
        .unwrap_err();
    assert!(matches!(err, PipelineError::InvalidRequest { .. }));
}

#[test]
fn weighted_graphs_scale_degrees_not_normalized_spectrum() {
    // Uniformly scaling all weights leaves the *normalized* Laplacian (and
    // hence the clustering) invariant.
    let build = |w: f64| {
        let mut g = MixedGraph::new(4);
        g.add_edge(0, 1, w).expect("edge");
        g.add_arc(1, 2, w).expect("arc");
        g.add_edge(2, 3, w).expect("edge");
        g.add_arc(3, 0, w).expect("arc");
        g
    };
    let l1 = normalized_hermitian_laplacian(&build(1.0), 0.25);
    let l5 = normalized_hermitian_laplacian(&build(5.0), 0.25);
    assert!((&l1 - &l5).max_norm() < 1e-12);

    // But the adjacency itself scales.
    let a1 = hermitian_adjacency(&build(1.0), 0.25);
    let a5 = hermitian_adjacency(&build(5.0), 0.25);
    assert!((&a5 - &a1.scaled(qsc_suite::linalg::Complex64::real(5.0))).max_norm() < 1e-12);
}

#[test]
fn heterogeneous_weights_shift_spectrum_sensibly() {
    // Fun fact encoded as a test: a weighted *path* of 3 vertices has the
    // weight-independent normalized spectrum {0, 1, 2} — so the weight
    // sensitivity must be checked on a triangle, where it is real.
    let mut p_weak = MixedGraph::new(3);
    p_weak.add_edge(0, 1, 1.0).expect("edge");
    p_weak.add_edge(1, 2, 1.0).expect("edge");
    let mut p_strong = MixedGraph::new(3);
    p_strong.add_edge(0, 1, 10.0).expect("edge");
    p_strong.add_edge(1, 2, 1.0).expect("edge");
    let pw = eigvalsh(&normalized_hermitian_laplacian(&p_weak, 0.25)).expect("eigh");
    let ps = eigvalsh(&normalized_hermitian_laplacian(&p_strong, 0.25)).expect("eigh");
    for (a, b) in pw.iter().zip(&ps) {
        assert!((a - b).abs() < 1e-9, "3-path spectrum must be weight-free");
    }

    let triangle = |w01: f64| {
        let mut g = MixedGraph::new(3);
        g.add_edge(0, 1, w01).expect("edge");
        g.add_edge(1, 2, 1.0).expect("edge");
        g.add_edge(0, 2, 1.0).expect("edge");
        g
    };
    let tw = eigvalsh(&normalized_hermitian_laplacian(&triangle(1.0), 0.25)).expect("eigh");
    let ts = eigvalsh(&normalized_hermitian_laplacian(&triangle(10.0), 0.25)).expect("eigh");
    assert!(tw[0].abs() < 1e-9 && ts[0].abs() < 1e-9); // connected: λ₀ = 0
    assert!((tw[1] - ts[1]).abs() > 1e-3, "triangle spectrum must move");
}

#[test]
fn graph_error_variants_reachable() {
    let mut g = MixedGraph::new(2);
    assert!(matches!(
        g.add_edge(0, 0, 1.0),
        Err(GraphError::SelfLoop { .. })
    ));
    assert!(matches!(
        g.add_edge(0, 7, 1.0),
        Err(GraphError::VertexOutOfBounds { .. })
    ));
    assert!(matches!(
        g.add_edge(0, 1, -2.0),
        Err(GraphError::NonPositiveWeight { .. })
    ));
    g.add_edge(0, 1, 1.0).expect("first");
    assert!(matches!(
        g.add_arc(1, 0, 1.0),
        Err(GraphError::DuplicateEdge { .. })
    ));
}

#[test]
fn kmeans_handles_duplicate_points() {
    // More clusters than *distinct* points: empty-cluster reseeding must
    // not loop or panic.
    let data = vec![vec![1.0, 1.0]; 8];
    let result = kmeans(
        &data,
        &KMeansConfig {
            k: 3,
            seed: 1,
            restarts: 2,
            ..KMeansConfig::default()
        },
    )
    .expect("duplicate points");
    assert_eq!(result.labels.len(), 8);
    assert!(result.inertia < 1e-12);
}

#[test]
fn eigensolver_handles_scaled_matrices() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    // Very large and very small scales must not break convergence.
    let mut rng = StdRng::seed_from_u64(5);
    let base = CMatrix::random_hermitian(10, &mut rng);
    for &scale in &[1e-8, 1.0, 1e8] {
        let a = base.scaled(qsc_suite::linalg::Complex64::real(scale));
        let eig = eigh(&a).expect("scaled eigh");
        let err = (&eig.reconstruct() - &a).max_norm();
        assert!(err < 1e-7 * scale.max(1.0), "scale {scale}: err {err}");
    }
}

#[test]
fn quantum_pipeline_with_extreme_precision_settings() {
    let mut g = MixedGraph::new(12);
    for i in 0..11 {
        g.add_arc(i, i + 1, 1.0).expect("arc");
    }
    // One QPE bit and one shot: maximally noisy but must not panic.
    let brutal = QuantumParams {
        qpe_bits: 1,
        tomography_shots: 1,
        norm_estimation_iters: 1,
        delta: 1.0,
        ..QuantumParams::default()
    };
    let out = Pipeline::hermitian(2)
        .seed(1)
        .quantum(&brutal)
        .run(&g)
        .expect("noisy run");
    assert_eq!(out.labels.len(), 12);
    // And very fine settings still work.
    let fine = QuantumParams {
        qpe_bits: 12,
        tomography_shots: 100_000,
        norm_estimation_iters: 4096,
        delta: 0.001,
        ..QuantumParams::default()
    };
    let out = Pipeline::hermitian(2)
        .seed(1)
        .quantum(&fine)
        .run(&g)
        .expect("fine run");
    assert_eq!(out.labels.len(), 12);
}
