//! Property-based tests (proptest) over the core invariants of the whole
//! stack: Hermitian structure, spectral bounds, unitarity, metric
//! invariances, and noise-model bounds.

use proptest::collection::vec;
use proptest::prelude::*;
use qsc_suite::cluster::metrics::{
    adjusted_rand_index, matched_accuracy, normalized_mutual_information,
};
use qsc_suite::graph::generators::{random_mixed, RandomMixedParams};
use qsc_suite::graph::{
    hermitian_adjacency, hermitian_laplacian, incidence_matrix, normalized_hermitian_laplacian,
    MixedGraph,
};
use qsc_suite::linalg::{eigh, eigvalsh, CMatrix, Complex64};
use qsc_suite::sim::qft::{apply_inverse_qft, apply_qft};
use qsc_suite::sim::qpe::qpe_phase_distribution;
use qsc_suite::sim::QuantumState;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random mixed graph with 3–16 vertices.
fn arb_mixed_graph() -> impl Strategy<Value = MixedGraph> {
    (3usize..16, 0u64..1_000_000, 0.0f64..0.4, 0.0f64..0.4).prop_map(|(n, seed, p_u, p_d)| {
        random_mixed(&RandomMixedParams {
            n,
            p_undirected: p_u,
            p_directed: p_d,
            weight_range: (0.5, 2.0),
            seed,
        })
        .expect("probabilities in range by construction")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hermitian_adjacency_always_hermitian(g in arb_mixed_graph(), q in 0.0f64..0.5) {
        let h = hermitian_adjacency(&g, q);
        prop_assert!(h.is_hermitian(1e-10));
    }

    #[test]
    fn laplacian_psd_for_any_mixed_graph(g in arb_mixed_graph(), q in 0.0f64..0.5) {
        let l = hermitian_laplacian(&g, q);
        let evals = eigvalsh(&l).expect("eigh");
        prop_assert!(evals[0] > -1e-8, "λ_min = {}", evals[0]);
    }

    #[test]
    fn normalized_laplacian_spectrum_in_unit_band(g in arb_mixed_graph(), q in 0.0f64..0.5) {
        let l = normalized_hermitian_laplacian(&g, q);
        let evals = eigvalsh(&l).expect("eigh");
        prop_assert!(evals[0] > -1e-8);
        prop_assert!(*evals.last().expect("non-empty") < 2.0 + 1e-8);
    }

    #[test]
    fn incidence_factorizes_laplacian_for_any_graph(g in arb_mixed_graph(), q in 0.0f64..0.5) {
        let b = incidence_matrix(&g, q);
        let l = hermitian_laplacian(&g, q);
        let err = (&b.matmul(&b.adjoint()) - &l).max_norm();
        prop_assert!(err < 1e-9, "‖BB† − L‖ = {err}");
    }

    #[test]
    fn eigendecomposition_reconstructs(seed in 0u64..1_000_000, n in 2usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = CMatrix::random_hermitian(n, &mut rng);
        let eig = eigh(&a).expect("eigh");
        let err = (&eig.reconstruct() - &a).max_norm();
        prop_assert!(err < 1e-7, "reconstruction error {err}");
        prop_assert!(eig.eigenvectors.is_unitary(1e-7));
    }

    #[test]
    fn qft_round_trip_identity(amps in vec(-1.0f64..1.0, 8), seed in 0u64..100) {
        let _ = seed;
        let total: f64 = amps.iter().map(|x| x * x).sum();
        prop_assume!(total > 1e-6);
        let complex: Vec<Complex64> = amps.iter().map(|&x| Complex64::real(x)).collect();
        let mut s = QuantumState::from_amplitudes(complex).expect("state");
        let before = s.amplitudes().to_vec();
        apply_qft(&mut s, 0..3).expect("qft");
        prop_assert!((s.norm() - 1.0).abs() < 1e-9);
        apply_inverse_qft(&mut s, 0..3).expect("iqft");
        for (a, b) in s.amplitudes().iter().zip(&before) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn qpe_distribution_is_probability(phi in 0.0f64..1.0, t in 1usize..9) {
        let d = qpe_phase_distribution(phi, t);
        let total: f64 = d.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(d.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn ari_bounded_and_permutation_invariant(
        labels_a in vec(0usize..4, 8..40),
        labels_b in vec(0usize..4, 8..40),
        shift in 1usize..4,
    ) {
        let n = labels_a.len().min(labels_b.len());
        let a = &labels_a[..n];
        let b = &labels_b[..n];
        let ari = adjusted_rand_index(a, b);
        prop_assert!((-1.0..=1.0).contains(&ari));
        let renamed: Vec<usize> = b.iter().map(|&l| (l + shift) % 4).collect();
        prop_assert!((adjusted_rand_index(a, &renamed) - ari).abs() < 1e-9);
    }

    #[test]
    fn nmi_and_accuracy_bounded(
        labels_a in vec(0usize..4, 8..40),
        labels_b in vec(0usize..4, 8..40),
    ) {
        let n = labels_a.len().min(labels_b.len());
        let a = &labels_a[..n];
        let b = &labels_b[..n];
        let nmi = normalized_mutual_information(a, b);
        prop_assert!((0.0..=1.0).contains(&nmi));
        let acc = matched_accuracy(a, b);
        prop_assert!(acc > 0.0 && acc <= 1.0);
        prop_assert!((matched_accuracy(a, a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn state_gates_preserve_norm(
        amps in vec(-1.0f64..1.0, 8),
        target in 0usize..3,
        theta in 0.0f64..6.2,
    ) {
        let total: f64 = amps.iter().map(|x| x * x).sum();
        prop_assume!(total > 1e-6);
        let complex: Vec<Complex64> = amps.iter().map(|&x| Complex64::real(x)).collect();
        let mut s = QuantumState::from_amplitudes(complex).expect("state");
        s.apply_h(target).expect("h");
        s.apply_single(&qsc_suite::sim::gates::rz(theta), target).expect("rz");
        let other = (target + 1) % 3;
        s.apply_cnot(target, other).expect("cnot");
        s.apply_controlled_phase(target, other, theta).expect("cphase");
        prop_assert!((s.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn symmetrization_preserves_degrees(g in arb_mixed_graph()) {
        let sym = g.symmetrized();
        for (a, b) in g.degrees().iter().zip(sym.degrees()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        prop_assert_eq!(sym.num_arcs(), 0);
    }

    #[test]
    fn two_level_synthesis_reconstructs(seed in 0u64..100_000, d in 2usize..7) {
        use qsc_suite::sim::synthesis::{reconstruct, two_level_decompose};
        let mut rng = StdRng::seed_from_u64(seed);
        let u = CMatrix::random_unitary(d, &mut rng);
        let factors = two_level_decompose(&u).expect("unitary input");
        let back = reconstruct(&factors, d);
        prop_assert!((&back - &u).max_norm() < 1e-8);
    }

    #[test]
    fn lanczos_agrees_with_full_eigh(seed in 0u64..100_000, n in 6usize..20) {
        use qsc_suite::linalg::lanczos::lanczos_lowest_k;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = CMatrix::random_hermitian(n, &mut rng);
        let k = 2;
        let partial = lanczos_lowest_k(&a, k, 1e-8, &mut rng).expect("lanczos");
        let full = eigh(&a).expect("eigh");
        for (p, f) in partial.eigenvalues.iter().zip(&full.eigenvalues) {
            prop_assert!((p - f).abs() < 1e-5, "lanczos {p} vs full {f}");
        }
    }

    #[test]
    fn trotter_unitary_stays_unitary(seed in 0u64..100_000, steps in 1usize..8) {
        use qsc_suite::core::trotter::trotter_unitary;
        let g = random_mixed(&RandomMixedParams {
            n: 6,
            p_undirected: 0.4,
            p_directed: 0.3,
            weight_range: (0.5, 1.5),
            seed,
        })
        .expect("params");
        let u = trotter_unitary(&g, 0.25, 0.7, steps).expect("trotter");
        prop_assert!(u.is_unitary(1e-8));
    }

    #[test]
    fn lu_solve_round_trips(seed in 0u64..100_000, n in 1usize..10) {
        use qsc_suite::linalg::lu::solve;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = CMatrix::random_hermitian(n, &mut rng);
        // Shift to make it comfortably non-singular.
        let shifted = CMatrix::from_fn(n, n, |i, j| {
            if i == j { a[(i, j)] + Complex64::real(10.0) } else { a[(i, j)] }
        });
        let x_true = CMatrix::random(n, 1, &mut rng).col(0);
        let b = shifted.matvec(&x_true);
        let x = solve(&shifted, &b).expect("solve");
        for (got, want) in x.iter().zip(&x_true) {
            prop_assert!((*got - *want).abs() < 1e-7);
        }
    }

    #[test]
    fn noisy_similarity_graph_bounded_by_margin(
        seed in 0u64..100_000,
        eps in 0.0f64..0.05,
    ) {
        use qsc_suite::graph::similarity::{quantum_similarity_graph, similarity_graph};
        let mut rng = StdRng::seed_from_u64(seed);
        // A line of points at pitch 0.3 with threshold 0.2: all pairwise
        // squared-distance margins exceed |0.09 − 0.04| = 0.05 ≥ eps, so no
        // edge may flip.
        let points: Vec<Vec<f64>> = (0..12).map(|i| vec![0.3 * i as f64]).collect();
        let exact = similarity_graph(&points, 0.2).expect("exact");
        let noisy = quantum_similarity_graph(&points, 0.2, eps, &mut rng).expect("noisy");
        prop_assert_eq!(exact, noisy);
    }

    #[test]
    fn mu_bounded_by_frobenius_for_incidence(g in arb_mixed_graph()) {
        prop_assume!(g.num_connections() > 0);
        let analytic = qsc_suite::core::cost::incidence_mu(&g);
        let b = incidence_matrix(&g, 0.25);
        prop_assert!(analytic <= b.frobenius_norm() + 1e-9);
        let dense = qsc_suite::linalg::params::mu(&b);
        prop_assert!((analytic - dense).abs() < 1e-6,
            "analytic {analytic} vs dense {dense}");
    }
}
