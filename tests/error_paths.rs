//! The typed failure surfaces that gate misuse before any computation:
//! backend capability checks, configuration range validation, and the
//! strict-JSON layer surfacing malformed specs through the experiment
//! engine as errors (never panics).

use qsc_bench::ExperimentSpec;
use qsc_suite::core::config::BackendConfig;
use qsc_suite::core::{gate_level_projected_row_on, Error};
use qsc_suite::graph::generators::{dsbm, DsbmParams};
use qsc_suite::graph::normalized_hermitian_laplacian;
use qsc_suite::linalg::CMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_laplacian() -> CMatrix {
    let inst = dsbm(&DsbmParams {
        n: 8,
        k: 2,
        p_intra: 0.9,
        p_inter: 0.9,
        eta_flow: 1.0,
        seed: 21,
        ..DsbmParams::default()
    })
    .expect("dsbm");
    normalized_hermitian_laplacian(&inst.graph, 0.25)
}

#[test]
fn gate_level_projection_rejects_density_backend() {
    // The mid-circuit post-selection reads amplitudes directly; a
    // vectorized-ρ buffer cannot support it, so the request must be
    // refused up front with a typed error.
    let backend = BackendConfig::Density {
        depolarizing: 0.0,
        readout_flip: 0.0,
    }
    .build()
    .expect("density backend builds");
    let l = small_laplacian();
    let mut rng = StdRng::seed_from_u64(0);
    let err = gate_level_projected_row_on(backend.as_ref(), &mut rng, &l, 0, 3, 4.0, 0.5)
        .expect_err("density backend must be rejected");
    match err {
        Error::InvalidRequest { context } => {
            assert!(context.contains("pure-state"), "context: {context}");
        }
        other => panic!("expected InvalidRequest, got {other:?}"),
    }
}

#[test]
fn sharded_backend_rejects_non_power_of_two_shard_counts() {
    for shards in [0usize, 3, 6] {
        let err = match (BackendConfig::Sharded {
            shards: Some(shards),
        })
        .build()
        {
            Err(e) => e,
            Ok(_) => panic!("non-power-of-two shard count {shards} must be rejected"),
        };
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("power of two, got {shards}")),
            "message: {msg}"
        );
    }
    for shards in [1usize, 2, 8] {
        assert!(
            BackendConfig::Sharded {
                shards: Some(shards)
            }
            .build()
            .is_ok(),
            "{shards} shards is a valid power of two"
        );
    }
}

#[test]
fn noise_probabilities_outside_unit_interval_are_rejected() {
    let err = match (BackendConfig::Noisy {
        depolarizing: 1.5,
        readout_flip: 0.0,
    })
    .build()
    {
        Err(e) => e,
        Ok(_) => panic!("p > 1 must be rejected"),
    };
    assert!(err.to_string().contains("[0, 1]"), "message: {err}");
}

/// A minimal pipeline spec that parses cleanly; the strict-JSON tests
/// below mutate it into the failure cases.
fn minimal_spec(resilience: &str) -> String {
    format!(
        r#"{{
  "name": "tiny",
  "title": "minimal",
  "kind": "pipeline",
  "graph": {{"family": "dsbm", "k": 2, "p_intra": 0.3, "p_inter": 0.1, "eta_flow": 0.8, "meta": "cycle"}},
  "reps": 1,
  "base": {{"k": 2}},{resilience}
  "variants": [{{"name": "classical"}}],
  "axes": [{{"name": "n", "path": "graph.n", "values": [32]}}],
  "columns": [
    {{"header": "n", "axis": "n"}},
    {{"header": "acc", "metric": "matched_accuracy", "mean_std": 3}}
  ]
}}"#
    )
}

#[test]
fn minimal_spec_parses() {
    ExperimentSpec::parse(&minimal_spec("")).expect("the template itself must be valid");
}

#[test]
fn duplicate_keys_are_rejected_by_the_strict_json_layer() {
    let text = minimal_spec("").replacen(r#""reps": 1,"#, r#""reps": 1, "reps": 2,"#, 1);
    let err = ExperimentSpec::parse(&text).expect_err("duplicate key must be rejected");
    assert!(err.message.contains("duplicate key `reps`"), "{err}");
}

#[test]
fn unknown_spec_fields_are_rejected() {
    let text = minimal_spec("").replacen(r#""reps": 1,"#, r#""reps": 1, "repss": 2,"#, 1);
    let err = ExperimentSpec::parse(&text).expect_err("unknown field must be rejected");
    assert!(err.message.contains("unknown field `repss`"), "{err}");
}

#[test]
fn resilience_block_rejects_unknown_fault_points() {
    let text = minimal_spec(
        r#"
  "resilience": {"fault_plan": {"seed": 1, "rates": {"task_strat": 0.5}}},"#,
    );
    let err = ExperimentSpec::parse(&text).expect_err("typo'd fault point must be rejected");
    assert!(
        err.message.contains("unknown fault point `task_strat`"),
        "{err}"
    );
}

#[test]
fn resilience_block_rejects_rates_outside_unit_interval() {
    let text = minimal_spec(
        r#"
  "resilience": {"fault_plan": {"seed": 1, "rates": {"task_start": 1.5}}},"#,
    );
    let err = ExperimentSpec::parse(&text).expect_err("rate > 1 must be rejected");
    assert!(err.message.contains("outside [0, 1]"), "{err}");
}

#[test]
fn resilience_block_round_trips_through_spec_json() {
    let text = minimal_spec(
        r#"
  "resilience": {
    "retries": 2,
    "deadline_ms": 5000,
    "state_budget_bytes": 1048576,
    "fallbacks": ["statevector", {"density": {"depolarizing": 0.01}}],
    "fault_plan": {"seed": 7, "rates": {"task_start": 0.5, "allocation": 0.1}}
  },"#,
    );
    let spec = ExperimentSpec::parse(&text).expect("resilience block parses");
    let reserialized = {
        use qsc_json::ToJson;
        spec.to_json().pretty()
    };
    let back = ExperimentSpec::parse(&reserialized).expect("reserialized spec parses");
    assert_eq!(back, spec, "resilience block does not round-trip");
}
