//! End-to-end integration tests across all workspace crates: generated
//! workload → Hermitian Laplacian → (classical | quantum) pipeline →
//! metrics, with seeded accuracy floors.

use qsc_suite::cluster::metrics::{adjusted_rand_index, matched_accuracy};
use qsc_suite::core::{baseline::adjacency_kmeans, Pipeline, QuantumParams};
use qsc_suite::graph::generators::{dsbm, netlist, DsbmParams, MetaGraph, NetlistParams};
use qsc_suite::graph::io::{from_edge_list, to_edge_list};
use qsc_suite::graph::stats::{cut_weight, mean_flow_imbalance};
use qsc_suite::graph::{hermitian_laplacian, incidence_matrix};

fn flow_instance(n: usize, seed: u64) -> qsc_suite::graph::generators::PlantedGraph {
    dsbm(&DsbmParams {
        n,
        k: 3,
        p_intra: 0.25,
        p_inter: 0.25,
        eta_flow: 0.95,
        meta: MetaGraph::Cycle,
        seed,
        ..DsbmParams::default()
    })
    .expect("valid params")
}

#[test]
fn classical_pipeline_accuracy_floor() {
    let inst = flow_instance(150, 1);
    let out = Pipeline::hermitian(3)
        .seed(2)
        .run(&inst.graph)
        .expect("pipeline");
    assert!(matched_accuracy(&inst.labels, &out.labels) > 0.95);
}

#[test]
fn quantum_pipeline_accuracy_floor() {
    let inst = flow_instance(150, 1);
    let out = Pipeline::hermitian(3)
        .seed(2)
        .quantum(&QuantumParams::default())
        .run(&inst.graph)
        .expect("pipeline");
    assert!(matched_accuracy(&inst.labels, &out.labels) > 0.85);
}

#[test]
fn method_ordering_on_flow_clusters() {
    // The evaluation's headline ordering: Hermitian (classical ≈ quantum)
    // ≫ symmetrized on flow-defined clusters.
    let inst = flow_instance(120, 3);
    let pl = Pipeline::hermitian(3).seed(5);
    let herm = pl.run(&inst.graph).expect("classical");
    let quan = pl
        .clone()
        .quantum(&QuantumParams::default())
        .run(&inst.graph)
        .expect("quantum");
    let blind = Pipeline::symmetrized(3)
        .seed(5)
        .run(&inst.graph)
        .expect("baseline");

    let acc_h = matched_accuracy(&inst.labels, &herm.labels);
    let acc_q = matched_accuracy(&inst.labels, &quan.labels);
    let acc_b = matched_accuracy(&inst.labels, &blind.labels);
    assert!(acc_h > acc_b + 0.15, "hermitian {acc_h} vs blind {acc_b}");
    assert!(acc_q > acc_b + 0.10, "quantum {acc_q} vs blind {acc_b}");
    assert!(
        (acc_h - acc_q).abs() < 0.15,
        "classical {acc_h} vs quantum {acc_q}"
    );
}

#[test]
fn netlist_module_recovery() {
    let params = NetlistParams {
        num_modules: 4,
        cells_per_module: 30,
        seed: 7,
        ..NetlistParams::default()
    };
    let inst = netlist(&params).expect("netlist");
    let herm = Pipeline::hermitian(4)
        .seed(2)
        .run(&inst.graph)
        .expect("classical");
    let acc = matched_accuracy(&inst.labels, &herm.labels);
    assert!(acc > 0.7, "netlist module accuracy {acc}");
    // The recovered partition must have strongly oriented boundaries.
    let imb = mean_flow_imbalance(&inst.graph, &herm.labels, 4);
    assert!(imb > 0.5, "flow imbalance {imb}");
}

#[test]
fn incidence_factorization_on_generated_workloads() {
    // L(q) = B(q)·B(q)† must hold on every generator's output.
    let dsbm_inst = flow_instance(24, 9);
    let net_inst = netlist(&NetlistParams {
        num_modules: 3,
        cells_per_module: 8,
        seed: 9,
        ..NetlistParams::default()
    })
    .expect("netlist");
    for (name, g) in [("dsbm", &dsbm_inst.graph), ("netlist", &net_inst.graph)] {
        for &q in &[0.0, 0.25, 1.0 / 3.0] {
            let b = incidence_matrix(g, q);
            let l = hermitian_laplacian(g, q);
            let err = (&b.matmul(&b.adjoint()) - &l).max_norm();
            assert!(err < 1e-9, "{name} q={q}: err {err}");
        }
    }
}

#[test]
fn graph_io_round_trip_on_workloads() {
    let inst = flow_instance(40, 11);
    let text = to_edge_list(&inst.graph);
    let parsed = from_edge_list(&text).expect("parse");
    assert_eq!(parsed, inst.graph);
    // The parsed graph produces the identical Laplacian.
    let a = hermitian_laplacian(&inst.graph, 0.25);
    let b = hermitian_laplacian(&parsed, 0.25);
    assert!((&a - &b).max_norm() < 1e-15);
}

#[test]
fn adjacency_baseline_is_weaker_than_spectral() {
    let inst = flow_instance(120, 13);
    let spectral = Pipeline::hermitian(3)
        .seed(4)
        .run(&inst.graph)
        .expect("classical");
    let naive_labels = adjacency_kmeans(
        &inst.graph,
        3,
        qsc_suite::graph::Q_CLASSICAL,
        &Default::default(),
        4,
    )
    .expect("naive");
    let acc_s = matched_accuracy(&inst.labels, &spectral.labels);
    let acc_n = matched_accuracy(&inst.labels, &naive_labels);
    assert!(
        acc_s >= acc_n,
        "spectral {acc_s} must not lose to naive {acc_n}"
    );
}

#[test]
fn ari_and_accuracy_agree_on_perfect_runs() {
    let inst = flow_instance(90, 17);
    let out = Pipeline::hermitian(3)
        .seed(8)
        .run(&inst.graph)
        .expect("classical");
    let acc = matched_accuracy(&inst.labels, &out.labels);
    let ari = adjusted_rand_index(&inst.labels, &out.labels);
    if acc == 1.0 {
        assert!((ari - 1.0).abs() < 1e-12);
    } else {
        assert!(ari <= 1.0);
    }
}

#[test]
fn cut_weight_lower_for_recovered_partition_than_random() {
    let inst = dsbm(&DsbmParams {
        n: 90,
        k: 3,
        p_intra: 0.4,
        p_inter: 0.05,
        seed: 19,
        ..DsbmParams::default()
    })
    .expect("dsbm");
    let out = Pipeline::hermitian(3)
        .seed(3)
        .run(&inst.graph)
        .expect("classical");
    let recovered_cut = cut_weight(&inst.graph, &out.labels);
    let random_labels: Vec<usize> = (0..90).map(|i| (i * 7 + 3) % 3).collect();
    let random_cut = cut_weight(&inst.graph, &random_labels);
    assert!(
        recovered_cut < random_cut,
        "{recovered_cut} vs {random_cut}"
    );
}

#[test]
fn diagnostics_cost_models_positive_and_ordered() {
    let inst = flow_instance(100, 23);
    let q = Pipeline::hermitian(3)
        .seed(1)
        .quantum(&QuantumParams::default())
        .run(&inst.graph)
        .expect("quantum");
    assert!(q.diagnostics.classical_cost > 0.0);
    assert!(q.diagnostics.quantum_cost.expect("set") > 0.0);
    assert!(q.diagnostics.kappa >= 1.0);
    assert!(q.diagnostics.mu_b > 0.0);
    assert!(q.diagnostics.eta_embedding >= 1.0);
}
