//! Differential kernel-equivalence harness: every SIMD kernel tier vs the
//! scalar reference, bit for bit.
//!
//! The workspace's byte-identity claims (golden CSVs, cross-backend
//! amplitude pinning, content-addressed caching) all assume the complex
//! kernels in `qsc_linalg::kernels` produce the same bits on every tier.
//! This suite is what makes that assumption enforceable:
//!
//! * every kernel × every available tier × awkward lengths (1..=9, 2^n±1)
//!   on seeded random inputs — exact bit equality against the scalar tier;
//! * special values: denormals, signed zeros, infinities — exact bit
//!   equality; NaN inputs — NaN-position identity plus bit equality on the
//!   non-NaN lanes (NaN *payloads* are microarchitecture detail we do not
//!   bet CI on);
//! * state-level replays: `apply_single` / controlled gates / controlled
//!   phase at every qubit position (stride edges), and the matrix kernels
//!   (`matmul`, `matvec`, `gram`) against in-test naive scalar loops —
//!   pinning the *wiring*, not just the kernels;
//! * the one documented ULP-bound kernel, `dot_unordered`, against its
//!   reassociation error bound `|Δ| ≤ 2·n·ε·Σ|x_i|·|y_i|`;
//! * proptest generators for gate and reduction inputs.
//!
//! CI runs this suite under `QSC_KERNELS` ∈ {scalar, portable, avx2} ×
//! `RAYON_NUM_THREADS` ∈ {1, 2, 4}; in-process, the `_with` kernel
//! variants additionally exercise every available tier regardless of the
//! environment (tiers the CPU lacks are skipped with a note).

use proptest::prelude::*;
use qsc_suite::linalg::kernels::{
    self, axpy_with, cdot_with, dot_unordered_with, dot_with, gate2_with, scale_with, Gate2,
    KernelTier,
};
use qsc_suite::linalg::{CMatrix, Complex64, C_ONE, C_ZERO};
use qsc_suite::sim::QuantumState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lengths that hit every edge the tiers care about: sub-width slices,
/// odd remainders, and exact power-of-two boundaries ±1.
const AWKWARD_LENS: &[usize] = &[
    1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 129, 255, 256, 257,
];

/// The tiers this CPU can execute, with a skip note for the ones it
/// cannot (the note is the suite's record that coverage was reduced).
fn available_tiers() -> Vec<KernelTier> {
    let mut tiers = Vec::new();
    for tier in KernelTier::ALL {
        if tier.is_available() {
            tiers.push(tier);
        } else {
            eprintln!("note: skipping {tier} kernel tier (not supported by this CPU)");
        }
    }
    tiers
}

fn bits(z: Complex64) -> (u64, u64) {
    (z.re.to_bits(), z.im.to_bits())
}

/// Exact bit equality, element by element. `context` names the kernel and
/// tier so a failure is self-locating.
fn assert_bits_eq(got: &[Complex64], want: &[Complex64], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            bits(*g),
            bits(*w),
            "{context}: element {i}: got {g:?}, want {w:?}"
        );
    }
}

/// NaN-tolerant comparison: NaNs must appear in the same lanes; non-NaN
/// lanes must be bit-equal. (x86 NaN *payload* propagation is matched by
/// the operand-order discipline, but we do not pin CI on it.)
fn assert_nan_pattern_eq(got: &[Complex64], want: &[Complex64], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        for (lane, (gv, wv)) in [("re", (g.re, w.re)), ("im", (g.im, w.im))] {
            assert_eq!(
                gv.is_nan(),
                wv.is_nan(),
                "{context}: element {i}.{lane}: NaN mismatch: got {gv}, want {wv}"
            );
            if !wv.is_nan() {
                assert_eq!(
                    gv.to_bits(),
                    wv.to_bits(),
                    "{context}: element {i}.{lane}: got {gv}, want {wv}"
                );
            }
        }
    }
}

fn random_vec(len: usize, rng: &mut StdRng) -> Vec<Complex64> {
    (0..len)
        .map(|_| Complex64::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)))
        .collect()
}

fn random_gate(rng: &mut StdRng) -> Gate2 {
    let g = |rng: &mut StdRng| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
    [[g(rng), g(rng)], [g(rng), g(rng)]]
}

/// A vector salted with every non-NaN special value class: ±0.0,
/// denormals (including the smallest positive f64), ±∞, and huge/tiny
/// magnitudes.
fn special_vec(len: usize, rng: &mut StdRng) -> Vec<Complex64> {
    let specials = [
        0.0,
        -0.0,
        f64::MIN_POSITIVE,                      // smallest normal
        f64::MIN_POSITIVE / 2.0,                // denormal
        f64::from_bits(1),                      // smallest positive denormal
        -f64::from_bits(0x0008_0000_0000_0001), // negative denormal
        f64::INFINITY,
        f64::NEG_INFINITY,
        1e308,
        -1e-308,
    ];
    (0..len)
        .map(|_| {
            let pick = |rng: &mut StdRng| {
                if rng.gen::<bool>() {
                    specials[rng.gen_range(0..specials.len())]
                } else {
                    rng.gen_range(-2.0..2.0)
                }
            };
            Complex64::new(pick(rng), pick(rng))
        })
        .collect()
}

/// Like [`special_vec`] but also salts NaNs in.
fn nan_vec(len: usize, rng: &mut StdRng) -> Vec<Complex64> {
    let mut v = special_vec(len, rng);
    for z in v.iter_mut() {
        if rng.gen_range(0..4) == 0 {
            if rng.gen::<bool>() {
                z.re = f64::NAN;
            } else {
                z.im = f64::NAN;
            }
        }
    }
    v
}

// ---------------------------------------------------------------------------
// Kernel-level differentials: each tier vs the scalar tier.
// ---------------------------------------------------------------------------

#[test]
fn gate2_is_bit_identical_across_tiers_at_awkward_lengths() {
    let mut rng = StdRng::seed_from_u64(101);
    for &len in AWKWARD_LENS {
        let lo0 = random_vec(len, &mut rng);
        let hi0 = random_vec(len, &mut rng);
        let g = random_gate(&mut rng);
        let (mut rlo, mut rhi) = (lo0.clone(), hi0.clone());
        gate2_with(KernelTier::Scalar, &g, &mut rlo, &mut rhi);
        for tier in available_tiers() {
            let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
            gate2_with(tier, &g, &mut lo, &mut hi);
            assert_bits_eq(&lo, &rlo, &format!("gate2 lo len {len} tier {tier}"));
            assert_bits_eq(&hi, &rhi, &format!("gate2 hi len {len} tier {tier}"));
        }
    }
}

#[test]
fn scale_is_bit_identical_across_tiers_at_awkward_lengths() {
    let mut rng = StdRng::seed_from_u64(102);
    for &len in AWKWARD_LENS {
        let x0 = random_vec(len, &mut rng);
        let alpha = Complex64::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0));
        let mut want = x0.clone();
        scale_with(KernelTier::Scalar, alpha, &mut want);
        for tier in available_tiers() {
            let mut x = x0.clone();
            scale_with(tier, alpha, &mut x);
            assert_bits_eq(&x, &want, &format!("scale len {len} tier {tier}"));
        }
    }
}

#[test]
fn axpy_is_bit_identical_across_tiers_at_awkward_lengths() {
    let mut rng = StdRng::seed_from_u64(103);
    for &len in AWKWARD_LENS {
        let x = random_vec(len, &mut rng);
        let y0 = random_vec(len, &mut rng);
        let alpha = Complex64::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0));
        let mut want = y0.clone();
        axpy_with(KernelTier::Scalar, alpha, &x, &mut want);
        for tier in available_tiers() {
            let mut y = y0.clone();
            axpy_with(tier, alpha, &x, &mut y);
            assert_bits_eq(&y, &want, &format!("axpy len {len} tier {tier}"));
        }
    }
}

#[test]
fn ordered_reductions_are_bit_identical_across_tiers_at_awkward_lengths() {
    let mut rng = StdRng::seed_from_u64(104);
    for &len in AWKWARD_LENS {
        let x = random_vec(len, &mut rng);
        let y = random_vec(len, &mut rng);
        let want_dot = dot_with(KernelTier::Scalar, &x, &y);
        let want_cdot = cdot_with(KernelTier::Scalar, &x, &y);
        for tier in available_tiers() {
            assert_bits_eq(
                &[dot_with(tier, &x, &y)],
                &[want_dot],
                &format!("dot len {len} tier {tier}"),
            );
            assert_bits_eq(
                &[cdot_with(tier, &x, &y)],
                &[want_cdot],
                &format!("cdot len {len} tier {tier}"),
            );
        }
    }
}

#[test]
fn special_values_are_bit_identical_across_tiers() {
    // Denormals, signed zeros, infinities: the SIMD lanes must round,
    // underflow, and sign-propagate exactly like the scalar ops.
    let mut rng = StdRng::seed_from_u64(105);
    for &len in &[1, 2, 3, 7, 8, 9, 33, 257] {
        for case in 0..8 {
            let lo0 = special_vec(len, &mut rng);
            let hi0 = special_vec(len, &mut rng);
            let g = random_gate(&mut rng);
            let alpha = hi0[0];
            let context =
                |k: &str, t: KernelTier| format!("{k} special len {len} case {case} tier {t}");

            let (mut rlo, mut rhi) = (lo0.clone(), hi0.clone());
            gate2_with(KernelTier::Scalar, &g, &mut rlo, &mut rhi);
            let mut rscale = lo0.clone();
            scale_with(KernelTier::Scalar, alpha, &mut rscale);
            let mut raxpy = hi0.clone();
            axpy_with(KernelTier::Scalar, alpha, &lo0, &mut raxpy);
            let rdot = dot_with(KernelTier::Scalar, &lo0, &hi0);
            let rcdot = cdot_with(KernelTier::Scalar, &lo0, &hi0);

            for tier in available_tiers() {
                let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
                gate2_with(tier, &g, &mut lo, &mut hi);
                assert_nan_pattern_eq(&lo, &rlo, &context("gate2 lo", tier));
                assert_nan_pattern_eq(&hi, &rhi, &context("gate2 hi", tier));
                let mut s = lo0.clone();
                scale_with(tier, alpha, &mut s);
                assert_nan_pattern_eq(&s, &rscale, &context("scale", tier));
                let mut a = hi0.clone();
                axpy_with(tier, alpha, &lo0, &mut a);
                assert_nan_pattern_eq(&a, &raxpy, &context("axpy", tier));
                assert_nan_pattern_eq(
                    &[dot_with(tier, &lo0, &hi0)],
                    &[rdot],
                    &context("dot", tier),
                );
                assert_nan_pattern_eq(
                    &[cdot_with(tier, &lo0, &hi0)],
                    &[rcdot],
                    &context("cdot", tier),
                );
            }
        }
    }
}

#[test]
fn nan_propagation_matches_scalar_positions() {
    // A NaN anywhere in an input must surface as NaN in exactly the lanes
    // the scalar reference produces it in, with every other lane bit-equal.
    let mut rng = StdRng::seed_from_u64(106);
    for &len in &[1, 3, 4, 5, 8, 17, 64, 129] {
        for case in 0..8 {
            let lo0 = nan_vec(len, &mut rng);
            let hi0 = nan_vec(len, &mut rng);
            let g = random_gate(&mut rng);
            let context =
                |k: &str, t: KernelTier| format!("{k} nan len {len} case {case} tier {t}");

            let (mut rlo, mut rhi) = (lo0.clone(), hi0.clone());
            gate2_with(KernelTier::Scalar, &g, &mut rlo, &mut rhi);
            let rdot = dot_with(KernelTier::Scalar, &lo0, &hi0);
            let rcdot = cdot_with(KernelTier::Scalar, &lo0, &hi0);

            for tier in available_tiers() {
                let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
                gate2_with(tier, &g, &mut lo, &mut hi);
                assert_nan_pattern_eq(&lo, &rlo, &context("gate2 lo", tier));
                assert_nan_pattern_eq(&hi, &rhi, &context("gate2 hi", tier));
                assert_nan_pattern_eq(
                    &[dot_with(tier, &lo0, &hi0)],
                    &[rdot],
                    &context("dot", tier),
                );
                assert_nan_pattern_eq(
                    &[cdot_with(tier, &lo0, &hi0)],
                    &[rcdot],
                    &context("cdot", tier),
                );
            }
        }
    }
}

#[test]
fn dot_unordered_stays_within_the_documented_ulp_bound() {
    // The one reassociated kernel: |Δ| ≤ 2·n·ε·Σ|x_i|·|y_i| per component
    // against the ordered scalar reduction (docs/KERNELS.md).
    let mut rng = StdRng::seed_from_u64(107);
    for &len in AWKWARD_LENS {
        let x = random_vec(len, &mut rng);
        let y = random_vec(len, &mut rng);
        let reference = dot_with(KernelTier::Scalar, &x, &y);
        let bound = 2.0
            * len as f64
            * f64::EPSILON
            * x.iter()
                .zip(&y)
                .map(|(a, b)| a.abs() * b.abs())
                .sum::<f64>();
        for tier in available_tiers() {
            let got = dot_unordered_with(tier, &x, &y);
            let diff = (got - reference).abs();
            assert!(
                diff <= bound,
                "dot_unordered len {len} tier {tier}: |Δ| = {diff:e} > bound {bound:e}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatch layer.
// ---------------------------------------------------------------------------

#[test]
fn active_tier_honors_a_forced_environment() {
    // Under the CI env-matrix, QSC_KERNELS is set before the process
    // starts; the latched active tier must match it exactly (the forced
    // tier is validated, so "set but unavailable" never reaches here).
    let active = kernels::active();
    assert!(active.is_available(), "active tier must be executable");
    match std::env::var(kernels::KERNELS_ENV) {
        Ok(forced) => match KernelTier::parse(&forced) {
            Some(tier) if tier.is_available() => {
                assert_eq!(
                    active,
                    tier,
                    "{}={forced} was not honored",
                    kernels::KERNELS_ENV
                );
            }
            Some(tier) => {
                eprintln!(
                    "note: {}={tier} forced but unavailable; library fell back",
                    kernels::KERNELS_ENV
                );
                assert_eq!(active, kernels::detect());
            }
            None => panic!("CI set an invalid {}={forced}", kernels::KERNELS_ENV),
        },
        Err(_) => assert_eq!(active, kernels::detect(), "no override: detection wins"),
    }
}

#[test]
fn validate_rejects_unknown_and_unavailable_tiers_by_name() {
    // The error type itself (the named-error contract binaries rely on).
    let unknown = kernels::KernelConfigError::UnknownTier("mmx".into());
    let message = unknown.to_string();
    assert!(message.contains(kernels::KERNELS_ENV), "{message}");
    assert!(message.contains("mmx"), "{message}");
    assert!(message.contains("scalar | portable | avx2"), "{message}");
    let unavailable = kernels::KernelConfigError::Unavailable(KernelTier::Avx2);
    assert!(unavailable.to_string().contains("avx2"));
}

// ---------------------------------------------------------------------------
// Wiring-level replays: the dispatched kernels as the simulator and the
// matrix layer actually call them.
// ---------------------------------------------------------------------------

/// Scalar reference for a single-qubit gate: the textbook per-index loop,
/// written without any shared kernel code.
fn naive_apply_single(amps: &mut [Complex64], g: &Gate2, qubit: usize) {
    let bit = 1usize << qubit;
    for i in 0..amps.len() {
        if i & bit == 0 {
            let a0 = amps[i];
            let a1 = amps[i | bit];
            amps[i] = g[0][0] * a0 + g[0][1] * a1;
            amps[i | bit] = g[1][0] * a0 + g[1][1] * a1;
        }
    }
}

fn naive_apply_controlled(amps: &mut [Complex64], g: &Gate2, control: usize, target: usize) {
    let cbit = 1usize << control;
    let tbit = 1usize << target;
    for i in 0..amps.len() {
        if i & tbit == 0 && i & cbit != 0 {
            let a0 = amps[i];
            let a1 = amps[i | tbit];
            amps[i] = g[0][0] * a0 + g[0][1] * a1;
            amps[i | tbit] = g[1][0] * a0 + g[1][1] * a1;
        }
    }
}

fn naive_apply_cphase(amps: &mut [Complex64], control: usize, target: usize, theta: f64) {
    let phase = Complex64::cis(theta);
    let both = (1usize << control) | (1usize << target);
    for (i, a) in amps.iter_mut().enumerate() {
        if i & both == both {
            *a *= phase;
        }
    }
}

fn random_state(n: usize, rng: &mut StdRng) -> QuantumState {
    let amps = random_vec(1 << n, rng);
    QuantumState::from_amplitudes(amps).expect("dimension matches")
}

#[test]
fn apply_single_matches_naive_replay_at_every_stride() {
    // Every qubit position of every register size up to 9 qubits: this
    // sweeps the kernel across stride edges 1, 2, 4, …, 256 — sub-lane,
    // exact-lane, and multi-lane splits included — under the *dispatched*
    // tier, against a from-scratch scalar replay.
    let mut rng = StdRng::seed_from_u64(201);
    for n in 1..=9 {
        for qubit in 0..n {
            let state0 = random_state(n, &mut rng);
            let g = random_gate(&mut rng);
            let mut want: Vec<Complex64> = state0.amplitudes().to_vec();
            naive_apply_single(&mut want, &g, qubit);
            let mut state = state0;
            state.apply_single(&g, qubit).expect("in range");
            assert_bits_eq(
                state.amplitudes(),
                &want,
                &format!("apply_single n {n} qubit {qubit}"),
            );
        }
    }
}

#[test]
fn controlled_gates_match_naive_replay_for_every_qubit_pair() {
    let mut rng = StdRng::seed_from_u64(202);
    for n in 2..=7 {
        for control in 0..n {
            for target in 0..n {
                if control == target {
                    continue;
                }
                let state0 = random_state(n, &mut rng);
                let g = random_gate(&mut rng);
                let theta: f64 = rng.gen_range(-3.0..3.0);

                let mut want: Vec<Complex64> = state0.amplitudes().to_vec();
                naive_apply_controlled(&mut want, &g, control, target);
                let mut state = state0.clone();
                state
                    .apply_controlled_single(&g, control, target)
                    .expect("in range");
                assert_bits_eq(
                    state.amplitudes(),
                    &want,
                    &format!("controlled n {n} c {control} t {target}"),
                );

                let mut want: Vec<Complex64> = state0.amplitudes().to_vec();
                naive_apply_cphase(&mut want, control, target, theta);
                let mut state = state0.clone();
                state
                    .apply_controlled_phase(control, target, theta)
                    .expect("in range");
                assert_bits_eq(
                    state.amplitudes(),
                    &want,
                    &format!("cphase n {n} c {control} t {target}"),
                );
            }
        }
    }
}

/// Naive ikj matmul with the same `a == 0` skip as the production kernel
/// (the skip is semantic for ±0.0/∞/NaN operands, so the reference must
/// mirror it).
fn naive_matmul(a: &CMatrix, b: &CMatrix) -> CMatrix {
    let mut out = CMatrix::zeros(a.nrows(), b.ncols());
    for i in 0..a.nrows() {
        for k in 0..a.ncols() {
            let s = a[(i, k)];
            if s == C_ZERO {
                continue;
            }
            for j in 0..b.ncols() {
                let prod = s * b[(k, j)];
                out[(i, j)] += prod;
            }
        }
    }
    out
}

#[test]
fn matrix_kernels_match_naive_scalar_loops() {
    let mut rng = StdRng::seed_from_u64(203);
    // Sizes straddling the k-tile width (64) and the lane widths.
    for &(m, k, n) in &[
        (1, 1, 1),
        (3, 5, 2),
        (7, 9, 8),
        (16, 17, 15),
        (33, 64, 9),
        (20, 65, 33),
    ] {
        let a = CMatrix::from_fn(m, k, |_, _| {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let b = CMatrix::from_fn(k, n, |_, _| {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let want = naive_matmul(&a, &b);
        let got = a.matmul(&b);
        for i in 0..m {
            assert_bits_eq(
                got.row(i),
                want.row(i),
                &format!("matmul {m}x{k}x{n} row {i}"),
            );
        }
        let got_serial = a.matmul_serial(&b);
        for i in 0..m {
            assert_bits_eq(
                got_serial.row(i),
                want.row(i),
                &format!("matmul_serial {m}x{k}x{n} row {i}"),
            );
        }

        // matvec: ordered row dots.
        let x = random_vec(k, &mut rng);
        let want_y: Vec<Complex64> = (0..m)
            .map(|i| {
                let mut acc = C_ZERO;
                for (av, xv) in a.row(i).iter().zip(&x) {
                    acc += *av * *xv;
                }
                acc
            })
            .collect();
        assert_bits_eq(&a.matvec(&x), &want_y, &format!("matvec {m}x{k}"));

        // gram: conjugated axpy accumulation over the upper triangle.
        let want_g = {
            let mut out = CMatrix::zeros(k, k);
            for i in 0..k {
                for r in 0..m {
                    let c = a[(r, i)].conj();
                    if c == C_ZERO {
                        continue;
                    }
                    for j in i..k {
                        let prod = c * a[(r, j)];
                        out[(i, j)] += prod;
                    }
                }
            }
            for i in 0..k {
                for j in 0..i {
                    out[(i, j)] = out[(j, i)].conj();
                }
            }
            out
        };
        let got_g = a.gram();
        for i in 0..k {
            assert_bits_eq(
                got_g.row(i),
                want_g.row(i),
                &format!("gram {m}x{k} row {i}"),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Property tests.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_gate2_bit_identical_on_random_inputs(
        seed in 0u64..1_000_000,
        len in 1usize..70,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let lo0 = random_vec(len, &mut rng);
        let hi0 = random_vec(len, &mut rng);
        let g = random_gate(&mut rng);
        let (mut rlo, mut rhi) = (lo0.clone(), hi0.clone());
        gate2_with(KernelTier::Scalar, &g, &mut rlo, &mut rhi);
        for tier in available_tiers() {
            let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
            gate2_with(tier, &g, &mut lo, &mut hi);
            for i in 0..len {
                prop_assert_eq!(bits(lo[i]), bits(rlo[i]), "lo {} tier {}", i, tier);
                prop_assert_eq!(bits(hi[i]), bits(rhi[i]), "hi {} tier {}", i, tier);
            }
        }
    }

    #[test]
    fn prop_block_unitary_dot_bit_identical(
        seed in 0u64..1_000_000,
        block_qubits in 1usize..4,
    ) {
        // The block-unitary path is row-dots against state slices; pin the
        // whole wired operation on a random unitary-sized matrix.
        let mut rng = StdRng::seed_from_u64(seed);
        let block = 1usize << block_qubits;
        let u = CMatrix::from_fn(block, block, |_, _| {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let n = block_qubits + 2;
        let state0 = random_state(n, &mut rng);
        let mut want: Vec<Complex64> = state0.amplitudes().to_vec();
        for slice in want.chunks_mut(block) {
            let mut scratch = vec![C_ZERO; block];
            for (i, s) in scratch.iter_mut().enumerate() {
                let mut acc = C_ZERO;
                for (x, y) in u.row(i).iter().zip(slice.iter()) {
                    acc += *x * *y;
                }
                *s = acc;
            }
            slice.copy_from_slice(&scratch);
        }
        let mut state = state0;
        state.apply_controlled_block_unitary(&u, None).expect("fits");
        for (i, (g, w)) in state.amplitudes().iter().zip(&want).enumerate() {
            prop_assert_eq!(bits(*g), bits(*w), "amplitude {}", i);
        }
    }

    #[test]
    fn prop_dot_unordered_within_bound(
        seed in 0u64..1_000_000,
        len in 1usize..300,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = random_vec(len, &mut rng);
        let y = random_vec(len, &mut rng);
        let reference = dot_with(KernelTier::Scalar, &x, &y);
        let bound = 2.0 * len as f64 * f64::EPSILON
            * x.iter().zip(&y).map(|(a, b)| a.abs() * b.abs()).sum::<f64>();
        for tier in available_tiers() {
            let diff = (dot_unordered_with(tier, &x, &y) - reference).abs();
            prop_assert!(diff <= bound, "tier {}: {:e} > {:e}", tier, diff, bound);
        }
    }

    #[test]
    fn prop_scale_and_axpy_bit_identical(
        seed in 0u64..1_000_000,
        len in 1usize..70,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = random_vec(len, &mut rng);
        let y0 = random_vec(len, &mut rng);
        let alpha = Complex64::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0));
        let mut rscale = x.clone();
        scale_with(KernelTier::Scalar, alpha, &mut rscale);
        let mut raxpy = y0.clone();
        axpy_with(KernelTier::Scalar, alpha, &x, &mut raxpy);
        for tier in available_tiers() {
            let mut s = x.clone();
            scale_with(tier, alpha, &mut s);
            let mut a = y0.clone();
            axpy_with(tier, alpha, &x, &mut a);
            for i in 0..len {
                prop_assert_eq!(bits(s[i]), bits(rscale[i]), "scale {} tier {}", i, tier);
                prop_assert_eq!(bits(a[i]), bits(raxpy[i]), "axpy {} tier {}", i, tier);
            }
        }
    }
}

#[test]
fn identity_gate_is_exact_on_every_tier() {
    // Identity coefficients must pass amplitudes through untouched — the
    // +0·x terms must not flip signed zeros (addsub of exact zeros).
    let id: Gate2 = [[C_ONE, C_ZERO], [C_ZERO, C_ONE]];
    let mut rng = StdRng::seed_from_u64(301);
    let lo0 = special_vec(64, &mut rng);
    let hi0 = special_vec(64, &mut rng);
    let (mut rlo, mut rhi) = (lo0.clone(), hi0.clone());
    gate2_with(KernelTier::Scalar, &id, &mut rlo, &mut rhi);
    for tier in available_tiers() {
        let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
        gate2_with(tier, &id, &mut lo, &mut hi);
        assert_nan_pattern_eq(&lo, &rlo, &format!("identity lo tier {tier}"));
        assert_nan_pattern_eq(&hi, &rhi, &format!("identity hi tier {tier}"));
    }
}
