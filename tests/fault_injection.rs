//! The deterministic fault-injection harness end to end: panic isolation
//! on the worker pool, seeded fault plans that reproduce bit-identically
//! regardless of worker count, retry/fallback policies, and typed failure
//! kinds for Lanczos non-convergence and budget exhaustion.
//!
//! The CI chaos job runs this file under `RAYON_NUM_THREADS` 1, 2 and 4;
//! every assertion here is derived from the fault plan's pure decision
//! function, so the expected pattern is the same at any worker count.

use qsc_suite::core::config::BackendConfig;
use qsc_suite::core::{
    ClusteringOutcome, Error, FailureKind, FaultPlan, FaultPoint, GraphInstance, LanczosCsr,
    Pipeline, QuantumParams, ResiliencePolicy,
};
use qsc_suite::graph::generators::{dsbm, DsbmParams, MetaGraph, PlantedGraph};

/// An outcome with the (inherently non-deterministic) wall-time diagnostic
/// zeroed, so runs can be compared bit for bit on everything that matters.
fn timeless(out: &ClusteringOutcome) -> ClusteringOutcome {
    let mut out = out.clone();
    out.diagnostics.wall_seconds = 0.0;
    out
}

fn flow_instance(n: usize, seed: u64) -> PlantedGraph {
    dsbm(&DsbmParams {
        n,
        k: 2,
        p_intra: 0.3,
        p_inter: 0.1,
        eta_flow: 0.8,
        meta: MetaGraph::Cycle,
        seed,
        ..DsbmParams::default()
    })
    .expect("valid params")
}

/// The seed perturbation `Pipeline::guarded` applies per retry attempt
/// (attempt 0 runs the unmodified seed).
fn attempt_seed(seed: u64, attempt: u64) -> u64 {
    seed.wrapping_add(attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

#[test]
fn isolated_runner_matches_plain_runner_without_faults() {
    let insts: Vec<PlantedGraph> = (0..4).map(|i| flow_instance(40, 10 + i)).collect();
    let batch: Vec<GraphInstance<'_>> = insts
        .iter()
        .enumerate()
        .map(|(i, inst)| GraphInstance::with_seed(&inst.graph, i as u64))
        .collect();
    let pl = Pipeline::hermitian(2).seed(3);
    let plain = pl.run_many(&batch).expect("plain batch");
    let isolated = pl.run_many_isolated(&batch);
    assert_eq!(isolated.len(), plain.len());
    for (iso, exp) in isolated.iter().zip(&plain) {
        let out = iso.as_ref().expect("no faults injected");
        assert_eq!(
            timeless(out),
            timeless(exp),
            "isolated runner must be bit-identical"
        );
    }
}

#[test]
fn injected_panics_are_isolated_and_deterministic() {
    let plan = FaultPlan::seeded(7).with_rate(FaultPoint::TaskStart, 0.5);
    let insts: Vec<PlantedGraph> = (0..8).map(|i| flow_instance(30, 20 + i)).collect();
    let batch: Vec<GraphInstance<'_>> = insts
        .iter()
        .enumerate()
        .map(|(i, inst)| GraphInstance::with_seed(&inst.graph, i as u64))
        .collect();
    let pl = Pipeline::hermitian(2)
        .resilience(ResiliencePolicy {
            fault_plan: Some(plan),
            ..ResiliencePolicy::default()
        })
        .expect("policy");

    // Ground truth from the plan's pure decision function: instance seed
    // `s` panics at task start iff the plan decides so at site 0. This is
    // what makes the pattern identical at any worker count.
    let expected: Vec<bool> = (0..batch.len() as u64)
        .map(|s| plan.decides(FaultPoint::TaskStart, s, 0))
        .collect();
    assert!(
        expected.iter().any(|&f| f) && expected.iter().any(|&f| !f),
        "plan seed must mix failures and survivors for this test"
    );

    let first = pl.run_many_isolated(&batch);
    for (slot, &fails) in first.iter().zip(&expected) {
        match slot {
            Ok(_) => assert!(!fails, "survivor where the plan decides a panic"),
            Err(e) => {
                assert!(fails, "failure where the plan decides none");
                assert_eq!(e.kind, FailureKind::Panic);
                assert_eq!(e.attempts, 1);
                assert!(e.message.contains("task_start"), "message: {}", e.message);
            }
        }
    }

    // Same plan, same batch → byte-identical reports; and the worker pool
    // survived the panics (a plain batch still runs afterwards).
    let second = pl.run_many_isolated(&batch);
    for (a, b) in first.iter().zip(&second) {
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(timeless(x), timeless(y)),
            (Err(x), Err(y)) => assert_eq!(x, y),
            _ => panic!("run-to-run failure pattern diverged"),
        }
    }
    let plain = Pipeline::hermitian(2)
        .seed(3)
        .run_many(&batch)
        .expect("pool usable after isolated panics");
    assert_eq!(plain.len(), batch.len());
}

#[test]
fn retries_rerun_with_perturbed_seeds() {
    let plan = FaultPlan::seeded(11).with_rate(FaultPoint::TaskStart, 0.5);
    // Find an instance seed whose first attempt panics but whose retry
    // (perturbed seed) survives — pure plan arithmetic, no execution.
    let seed = (0..200u64)
        .find(|&s| {
            plan.decides(FaultPoint::TaskStart, attempt_seed(s, 0), 0)
                && !plan.decides(FaultPoint::TaskStart, attempt_seed(s, 1), 0)
        })
        .expect("some seed fails then recovers");
    let inst = flow_instance(30, 1);
    let batch = [GraphInstance::with_seed(&inst.graph, seed)];

    let fail_fast = Pipeline::hermitian(2)
        .resilience(ResiliencePolicy {
            fault_plan: Some(plan),
            ..ResiliencePolicy::default()
        })
        .expect("policy");
    let err = fail_fast.run_many_isolated(&batch)[0]
        .as_ref()
        .expect_err("no retries → the injected panic is final")
        .clone();
    assert_eq!(err.kind, FailureKind::Panic);

    let with_retry = Pipeline::hermitian(2)
        .resilience(ResiliencePolicy {
            retries: 1,
            fault_plan: Some(plan),
            ..ResiliencePolicy::default()
        })
        .expect("policy");
    let out = with_retry.run_many_isolated(&batch);
    assert!(
        out[0].is_ok(),
        "retry with perturbed seed must survive: {:?}",
        out[0].as_ref().err()
    );
}

#[test]
fn lanczos_iteration_fault_reports_non_convergence() {
    let plan = FaultPlan::seeded(5).with_rate(FaultPoint::LanczosIteration, 1.0);
    let inst = flow_instance(40, 2);
    let batch = [GraphInstance::with_seed(&inst.graph, 0)];
    let pl = Pipeline::hermitian(2)
        .embedder(LanczosCsr)
        .resilience(ResiliencePolicy {
            fault_plan: Some(plan),
            ..ResiliencePolicy::default()
        })
        .expect("policy");
    let err = pl.run_many_isolated(&batch)[0]
        .as_ref()
        .expect_err("every Lanczos iteration is sabotaged")
        .clone();
    assert_eq!(err.kind, FailureKind::NonConvergence);
}

#[test]
fn policy_budget_fails_quantum_stage_with_budget_kind() {
    let inst = flow_instance(30, 3);
    let batch = [GraphInstance::with_seed(&inst.graph, 0)];
    let pl = Pipeline::hermitian(2)
        .quantum(&QuantumParams::default())
        .resilience(ResiliencePolicy {
            // Far below the 2^qpe_bits phase-register estimate.
            state_budget_bytes: Some(512),
            ..ResiliencePolicy::default()
        })
        .expect("policy");
    let err = pl.run_many_isolated(&batch)[0]
        .as_ref()
        .expect_err("512-byte budget cannot hold a phase register")
        .clone();
    assert_eq!(err.kind, FailureKind::Budget);
    assert!(
        err.message.contains("qpe phase register"),
        "message: {}",
        err.message
    );
}

#[test]
fn budget_failure_degrades_through_fallback_chain() {
    // qpe_bits = 14 exceeds the density-matrix backend's phase-register
    // cap → a budget failure; the fallback chain degrades to the exact
    // statevector backend, which handles it.
    let inst = flow_instance(8, 4);
    let qp = QuantumParams {
        qpe_bits: 14,
        ..QuantumParams::default()
    };
    let batch = [GraphInstance::with_seed(&inst.graph, 0)];

    let no_fallback = Pipeline::hermitian(2)
        .quantum(&qp)
        .backend_config(&BackendConfig::Density {
            depolarizing: 0.01,
            readout_flip: 0.0,
        })
        .expect("backend")
        .resilience(ResiliencePolicy::default())
        .expect("policy");
    let err = no_fallback.run_many_isolated(&batch)[0]
        .as_ref()
        .expect_err("no fallbacks → the budget failure is final")
        .clone();
    assert_eq!(err.kind, FailureKind::Budget);

    let degraded = Pipeline::hermitian(2)
        .quantum(&qp)
        .backend_config(&BackendConfig::Density {
            depolarizing: 0.01,
            readout_flip: 0.0,
        })
        .expect("backend")
        .resilience(ResiliencePolicy {
            fallbacks: vec![BackendConfig::Statevector],
            ..ResiliencePolicy::default()
        })
        .expect("policy");
    let out = degraded.run_many_isolated(&batch);
    assert!(
        out[0].is_ok(),
        "fallback to statevector must succeed: {:?}",
        out[0].as_ref().err()
    );
}

#[test]
fn invalid_requests_fail_immediately_without_retries() {
    // k = 0 is inconsistent on every backend and every retry: the policy
    // must not burn attempts on it.
    let inst = flow_instance(20, 5);
    let batch = [GraphInstance::with_seed(&inst.graph, 0)];
    let pl = Pipeline::hermitian(0)
        .resilience(ResiliencePolicy {
            retries: 3,
            ..ResiliencePolicy::default()
        })
        .expect("policy");
    let err = pl.run_many_isolated(&batch)[0]
        .as_ref()
        .expect_err("k = 0 is invalid")
        .clone();
    assert_eq!(err.kind, FailureKind::Invalid);
    assert_eq!(err.attempts, 1, "invalid requests must not be retried");
}

#[test]
fn nan_guard_classifies_as_numeric_failure() {
    // The embedding NaN/∞ guard maps to Error::NonFinite, whose kind is
    // `numeric` — checked here through the public classifier so the chaos
    // taxonomy stays covered end to end.
    let e = Error::NonFinite {
        context: "embedding row 0 from the `dense_eig` stage".into(),
    };
    assert_eq!(FailureKind::classify(&e), FailureKind::NonFinite);
    assert_eq!(FailureKind::NonFinite.name(), "numeric");
}

/// A remote backend hosting a plain statevector at `addr`.
fn remote_config(addr: &str) -> BackendConfig {
    BackendConfig::Remote {
        addr: addr.into(),
        inner: Box::new(BackendConfig::Statevector),
    }
}

#[test]
fn remote_call_drops_classify_as_transport_errors() {
    // Rate 1.0 drops every remote call *before* it touches the network,
    // so the (dead) address below is never actually contacted.
    let plan = FaultPlan::seeded(13).with_rate(FaultPoint::RemoteCall, 1.0);
    let inst = flow_instance(20, 6);
    let batch = [GraphInstance::with_seed(&inst.graph, 0)];
    let pl = Pipeline::hermitian(2)
        .quantum(&QuantumParams::default())
        .backend_config(&remote_config("127.0.0.1:1"))
        .expect("backend")
        .resilience(ResiliencePolicy {
            retries: 2,
            fault_plan: Some(plan),
            ..ResiliencePolicy::default()
        })
        .expect("policy");
    let err = pl.run_many_isolated(&batch)[0]
        .as_ref()
        .expect_err("every remote call drops and there is no fallback")
        .clone();
    assert_eq!(err.kind, FailureKind::Other);
    assert_eq!(err.kind.name(), "error");
    assert_eq!(
        err.attempts, 3,
        "transport failures retry the same executor before giving up"
    );
    assert!(
        err.message.contains("remote_call"),
        "message: {}",
        err.message
    );
}

#[test]
fn remote_drops_fall_back_to_local_without_perturbing_the_seed() {
    // Transport failures never start the work, so they must not advance
    // the retry seed perturbation: once the fallback chain degrades to the
    // local inner backend, the outcome is bit-identical to a plain local
    // run — the strongest observable proof that attempt 0's seed survived
    // the dead executor.
    let plan = FaultPlan::seeded(21).with_rate(FaultPoint::RemoteCall, 1.0);
    let insts: Vec<PlantedGraph> = (0..3).map(|i| flow_instance(20, 60 + i)).collect();
    let batch: Vec<GraphInstance<'_>> = insts
        .iter()
        .enumerate()
        .map(|(i, inst)| GraphInstance::with_seed(&inst.graph, i as u64))
        .collect();
    let qp = QuantumParams::default();
    let expected = Pipeline::hermitian(2)
        .quantum(&qp)
        .run_many(&batch)
        .expect("local ground truth");
    let remote = Pipeline::hermitian(2)
        .quantum(&qp)
        .backend_config(&remote_config("127.0.0.1:1"))
        .expect("backend")
        .resilience(ResiliencePolicy {
            fallbacks: vec![BackendConfig::Statevector],
            fault_plan: Some(plan),
            ..ResiliencePolicy::default()
        })
        .expect("policy");
    let out = remote.run_many_isolated(&batch);
    for (got, exp) in out.iter().zip(&expected) {
        let got = got.as_ref().expect("the fallback chain must engage");
        assert_eq!(
            timeless(got),
            timeless(exp),
            "fallback outcome must be bit-identical to a local run"
        );
    }
}

#[test]
fn remote_fault_pattern_is_worker_count_invariant() {
    // A real loopback executor serves the calls the plan lets through;
    // dropped calls (rate 0.5, decided by the pure plan hash) exhaust the
    // retry and degrade to the local inner. Either way every instance must
    // be bit-identical to a plain local run — at any worker count, which
    // is what CI's RAYON_NUM_THREADS matrix re-checks over this file.
    let cache_dir = std::env::temp_dir().join(format!("qsc-fault-remote-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let server = qsc_serve::Server::start(qsc_serve::ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 0, // exec requests are served by connection threads
        cache_dir,
        ..qsc_serve::ServeConfig::default()
    })
    .expect("executor starts");
    let addr = server.local_addr().to_string();

    let plan = FaultPlan::seeded(31).with_rate(FaultPoint::RemoteCall, 0.5);
    let insts: Vec<PlantedGraph> = (0..4).map(|i| flow_instance(16, 80 + i)).collect();
    let batch: Vec<GraphInstance<'_>> = insts
        .iter()
        .enumerate()
        .map(|(i, inst)| GraphInstance::with_seed(&inst.graph, i as u64))
        .collect();
    let qp = QuantumParams::default();
    let expected = Pipeline::hermitian(2)
        .quantum(&qp)
        .run_many(&batch)
        .expect("local ground truth");
    let remote = Pipeline::hermitian(2)
        .quantum(&qp)
        .backend_config(&remote_config(&addr))
        .expect("backend")
        .resilience(ResiliencePolicy {
            retries: 1,
            fallbacks: vec![BackendConfig::Statevector],
            fault_plan: Some(plan),
            ..ResiliencePolicy::default()
        })
        .expect("policy");
    let first = remote.run_many_isolated(&batch);
    let second = remote.run_many_isolated(&batch);
    for ((a, b), exp) in first.iter().zip(&second).zip(&expected) {
        let a = a.as_ref().expect("fallback covers every injected drop");
        let b = b.as_ref().expect("fallback covers every injected drop");
        assert_eq!(timeless(a), timeless(b), "run-to-run divergence");
        assert_eq!(
            timeless(a),
            timeless(exp),
            "remote/fallback mix must equal the local run bit for bit"
        );
    }
}

#[test]
fn clusterer_sweep_isolation_matches_plain_sweep() {
    use qsc_suite::core::{Clusterer, KMeans};
    use std::sync::Arc;

    let insts: Vec<PlantedGraph> = (0..3).map(|i| flow_instance(30, 40 + i)).collect();
    let batch: Vec<GraphInstance<'_>> = insts
        .iter()
        .enumerate()
        .map(|(i, inst)| GraphInstance::with_seed(&inst.graph, i as u64))
        .collect();
    let clusterers: Vec<Arc<dyn Clusterer>> = vec![Arc::new(KMeans), Arc::new(KMeans)];
    let pl = Pipeline::hermitian(2).seed(9);
    let plain = pl
        .run_many_clusterers(&batch, &clusterers)
        .expect("plain sweep");
    let isolated = pl.run_many_clusterers_isolated(&batch, &clusterers);
    for (iso, exp) in isolated.iter().zip(&plain) {
        let iso = iso.as_ref().expect("no faults injected");
        assert_eq!(iso.len(), exp.len());
        for (a, b) in iso.iter().zip(exp) {
            assert_eq!(timeless(a), timeless(b));
        }
    }
}
