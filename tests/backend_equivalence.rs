//! Property tests for the backend execution layer: compiled-circuit
//! execution on the `Statevector` backend must be **bit-identical** to the
//! old direct state-mutation path, a `NoisyStatevector` with zero noise
//! must equal the ideal backend, `ShardedStatevector` amplitudes must be
//! bit-identical to `Statevector` for every shard count (CI re-runs this
//! suite under `RAYON_NUM_THREADS` ∈ {1, 2, 4}), the zero-noise
//! `DensityMatrix` must reproduce the statevector's distributions, and the
//! gate-fusion compile pass must preserve amplitudes. Random circuits are
//! generated from seeded RNG streams via the proptest harness, so failures
//! are reproducible.
//!
//! CI additionally re-runs this whole suite once per kernel tier
//! (`QSC_KERNELS` ∈ {scalar, portable, avx2}): because the tiers are
//! bit-identical (pinned by `tests/kernel_equivalence.rs`), every
//! bit-identity property here must hold unchanged whether the process is
//! forced onto the scalar reference or dispatched onto SIMD — same
//! amplitudes, same samples, same RNG states.

use proptest::prelude::*;
use qsc_suite::linalg::expm::expi;
use qsc_suite::linalg::CMatrix;
use qsc_suite::sim::backend::{Backend, NoisyStatevector, Statevector};
use qsc_suite::sim::circuit::{Circuit, Op};
use qsc_suite::sim::compile::fuse_single_qubit;
use qsc_suite::sim::{gates, DensityMatrix, QuantumState, ShardedStatevector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Draws one random op on an `n`-qubit register, covering every variant
/// the compilers emit.
fn random_op(n: usize, rng: &mut StdRng) -> Op {
    let q = rng.gen_range(0..n);
    let q2 = (q + 1 + rng.gen_range(0..n - 1)) % n;
    match rng.gen_range(0usize..14) {
        0 => Op::H(q),
        1 => Op::X(q),
        2 => Op::Y(q),
        3 => Op::Z(q),
        4 => Op::S(q),
        5 => Op::T(q),
        6 => Op::Phase {
            target: q,
            theta: rng.gen_range(-3.0..3.0),
        },
        7 => Op::Rz {
            target: q,
            theta: rng.gen_range(-3.0..3.0),
        },
        8 => Op::Ry {
            target: q,
            theta: rng.gen_range(-3.0..3.0),
        },
        9 => Op::Cnot {
            control: q,
            target: q2,
        },
        10 => Op::CPhase {
            control: q,
            target: q2,
            theta: rng.gen_range(-3.0..3.0),
        },
        11 => Op::Swap(q, q2),
        12 => {
            // A random 2×2 block unitary on qubit 0 (e^{iH}), controlled by
            // a high qubit half of the time.
            let h = CMatrix::random_hermitian(2, rng);
            let u = expi(&h, rng.gen_range(0.1..1.0)).expect("unitary");
            let control = if n > 1 && rng.gen::<bool>() {
                Some(rng.gen_range(1..n))
            } else {
                None
            };
            Op::BlockUnitary {
                control,
                matrix: Arc::new(u),
            }
        }
        _ => {
            let block_qubits = 1;
            let phases: Vec<f64> = (0..2).map(|_| rng.gen_range(-3.0..3.0)).collect();
            Op::PhaseCascade {
                block_qubits,
                phases: Arc::new(phases),
                sign: if rng.gen::<bool>() { 1.0 } else { -1.0 },
            }
        }
    }
}

fn random_circuit(n: usize, len: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..len {
        c.push(random_op(n, &mut rng)).expect("valid op");
    }
    c
}

/// The pre-IR execution style: mutate the state through the `QuantumState`
/// methods directly, one call per op — the reference the compiled path must
/// reproduce bit-for-bit.
fn apply_direct(op: &Op, state: &mut QuantumState) {
    match *op {
        Op::H(q) => state.apply_h(q).unwrap(),
        Op::X(q) => state.apply_single(&gates::x(), q).unwrap(),
        Op::Y(q) => state.apply_single(&gates::y(), q).unwrap(),
        Op::Z(q) => state.apply_single(&gates::z(), q).unwrap(),
        Op::S(q) => state.apply_single(&gates::s(), q).unwrap(),
        Op::T(q) => state.apply_single(&gates::t(), q).unwrap(),
        Op::Phase { target, theta } => state.apply_single(&gates::phase(theta), target).unwrap(),
        Op::Rz { target, theta } => state.apply_single(&gates::rz(theta), target).unwrap(),
        Op::Ry { target, theta } => state.apply_single(&gates::ry(theta), target).unwrap(),
        Op::Cnot { control, target } => state.apply_cnot(control, target).unwrap(),
        Op::CPhase {
            control,
            target,
            theta,
        } => state
            .apply_controlled_phase(control, target, theta)
            .unwrap(),
        Op::Swap(a, b) => state.apply_swap(a, b).unwrap(),
        Op::Gate1 { target, ref matrix } => state.apply_single(matrix, target).unwrap(),
        Op::BlockUnitary {
            control,
            ref matrix,
        } => match control {
            None => state.apply_block_unitary(matrix).unwrap(),
            Some(c) => state
                .apply_controlled_block_unitary(matrix, Some(c))
                .unwrap(),
        },
        Op::PhaseCascade {
            block_qubits,
            ref phases,
            sign,
        } => {
            let block = 1usize << block_qubits;
            state.for_each_block_mut(block, |m, chunk| {
                let factor = sign * m as f64;
                for (a, &theta) in chunk.iter_mut().zip(phases.iter()) {
                    *a *= qsc_suite::linalg::Complex64::cis(theta * factor);
                }
            });
        }
    }
}

fn max_amp_diff(a: &QuantumState, b: &QuantumState) -> f64 {
    a.amplitudes()
        .iter()
        .zip(b.amplitudes())
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_execution_is_bit_identical_to_direct_mutation(
        seed in 0u64..1_000_000,
        n in 2usize..5,
        len in 1usize..30,
    ) {
        let circuit = random_circuit(n, len, seed);
        let basis = (seed % (1u64 << n)) as usize;

        // Old style: direct mutation, one apply_* call per op.
        let mut direct = QuantumState::basis_state(n, basis);
        for op in circuit.ops() {
            apply_direct(op, &mut direct);
        }

        // New style: compile → execute on the Statevector backend.
        let backend = Statevector::new();
        let mut rng = StdRng::seed_from_u64(0);
        let state = backend.execute(&circuit, basis, &mut rng).expect("execute");

        prop_assert_eq!(state.amplitudes(), direct.amplitudes());
        backend.recycle(state);
    }

    #[test]
    fn zero_noise_backend_equals_ideal(
        seed in 0u64..1_000_000,
        n in 2usize..5,
        len in 1usize..30,
    ) {
        let circuit = random_circuit(n, len, seed);
        let ideal = Statevector::new();
        let zero_noise = NoisyStatevector::new(0.0, 0.0);
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let a = ideal.execute(&circuit, 0, &mut rng_a).expect("ideal");
        let b = zero_noise.execute(&circuit, 0, &mut rng_b).expect("zero noise");
        prop_assert_eq!(a.amplitudes(), b.amplitudes());
        // Neither backend consumed randomness.
        prop_assert_eq!(rng_a, rng_b);
    }

    #[test]
    fn gate_fusion_preserves_amplitudes(
        seed in 0u64..1_000_000,
        n in 2usize..5,
        len in 1usize..40,
    ) {
        let circuit = random_circuit(n, len, seed);
        let fused = fuse_single_qubit(&circuit);
        prop_assert!(fused.gate_count() <= circuit.gate_count());
        for basis in [0usize, (1 << n) - 1] {
            let mut a = QuantumState::basis_state(n, basis);
            let mut b = QuantumState::basis_state(n, basis);
            circuit.run(&mut a).expect("unfused");
            fused.run(&mut b).expect("fused");
            prop_assert!(
                max_amp_diff(&a, &b) < 1e-12,
                "fusion drift {} on basis {}", max_amp_diff(&a, &b), basis
            );
        }
    }

    #[test]
    fn fused_statevector_backend_matches_fusing_manually(
        seed in 0u64..1_000_000,
        n in 2usize..4,
        len in 1usize..25,
    ) {
        let circuit = random_circuit(n, len, seed);
        let mut rng = StdRng::seed_from_u64(1);
        let via_backend = Statevector::fused().execute(&circuit, 0, &mut rng).expect("fused backend");
        let mut manual = QuantumState::zero_state(n);
        fuse_single_qubit(&circuit).run(&mut manual).expect("manual fuse");
        prop_assert_eq!(via_backend.amplitudes(), manual.amplitudes());
    }

    #[test]
    fn sharded_execution_is_bit_identical_for_every_shard_count(
        seed in 0u64..1_000_000,
        n in 2usize..6,
        len in 1usize..30,
    ) {
        let circuit = random_circuit(n, len, seed);
        let basis = (seed % (1u64 << n)) as usize;
        let reference = Statevector::new();
        let mut rng = StdRng::seed_from_u64(0);
        let expect = reference.execute(&circuit, basis, &mut rng).expect("reference");
        for shards in [1usize, 2, 4, 8] {
            let backend = ShardedStatevector::with_shards(shards);
            let got = backend.execute(&circuit, basis, &mut rng).expect("sharded");
            prop_assert_eq!(
                got.amplitudes(), expect.amplitudes(),
                "shards = {} on {} qubits", shards, n
            );
            backend.recycle(got);
        }
        reference.recycle(expect);
    }

    #[test]
    fn zero_noise_density_matrix_reproduces_statevector_distributions(
        seed in 0u64..1_000_000,
        n in 2usize..4,
        len in 1usize..20,
    ) {
        let circuit = random_circuit(n, len, seed);
        let sv = Statevector::new();
        let dm = DensityMatrix::new(0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let pure = sv.execute(&circuit, 0, &mut rng).expect("statevector");
        let rho = dm.execute(&circuit, 0, &mut rng).expect("density");
        let probs = dm.outcome_distribution(&rho);
        for (m, (&p, a)) in probs.iter().zip(pure.amplitudes()).enumerate() {
            prop_assert!(
                (p - a.norm_sqr()).abs() < 1e-12,
                "outcome {}: ρ diag {} vs |amp|² {}", m, p, a.norm_sqr()
            );
        }
        // The distribution-level hooks are bit-exact, not merely close.
        let phi = (seed % 997) as f64 / 997.0;
        prop_assert_eq!(
            dm.phase_distribution(phi, 5, &mut rng).unwrap(),
            sv.phase_distribution(phi, 5, &mut rng).unwrap()
        );
        prop_assert_eq!(
            dm.estimate_probability(phi, &mut rng).unwrap(),
            sv.estimate_probability(phi, &mut rng).unwrap()
        );
        dm.recycle(rho);
        sv.recycle(pure);
    }

    #[test]
    fn qasm_export_covers_every_random_circuit(
        seed in 0u64..1_000_000,
        n in 2usize..5,
        len in 1usize..25,
    ) {
        // No silent lossy export: one gate line per op, every variant.
        let circuit = random_circuit(n, len, seed);
        let qasm = circuit.to_qasm();
        let lines: Vec<&str> = qasm.lines().collect();
        let qreg = lines.iter().position(|l| l.starts_with("qreg")).expect("qreg");
        prop_assert_eq!(lines.len() - qreg - 1, circuit.gate_count());
    }
}

#[test]
fn remote_loopback_is_bit_identical_for_every_hosted_backend_kind() {
    use qsc_serve::{ServeConfig, Server};
    use qsc_suite::core::config::BackendConfig;

    let cache_dir = std::env::temp_dir().join(format!("qsc-remote-eq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 0, // exec requests are served by connection threads
        cache_dir,
        ..ServeConfig::default()
    })
    .expect("executor starts");
    let addr = server.local_addr().to_string();

    let inners = [
        BackendConfig::Statevector,
        BackendConfig::Sharded { shards: Some(2) },
        BackendConfig::Noisy {
            depolarizing: 0.05,
            readout_flip: 0.02,
        },
        BackendConfig::Density {
            depolarizing: 0.05,
            readout_flip: 0.01,
        },
    ];
    for inner in inners {
        let local = inner.build().expect("local backend");
        let remote = BackendConfig::Remote {
            addr: addr.clone(),
            inner: Box::new(inner.clone()),
        }
        .build()
        .expect("remote backend");
        // The remote proxy must advertise exactly the hosted backend's
        // statistical traits, or callers would take different fast paths.
        assert_eq!(remote.exact_statistics(), local.exact_statistics());
        assert_eq!(remote.pure_state(), local.pure_state());
        assert_eq!(remote.phase_register_limit(), local.phase_register_limit());

        for seed in [3u64, 17, 40] {
            let circuit = random_circuit(3, 15, seed);
            let basis = (seed % 8) as usize;
            let mut rng_l = StdRng::seed_from_u64(seed);
            let mut rng_r = StdRng::seed_from_u64(seed);
            let a = local
                .execute(&circuit, basis, &mut rng_l)
                .expect("local run");
            let b = remote
                .execute(&circuit, basis, &mut rng_r)
                .expect("remote run");
            assert_eq!(
                a.amplitudes(),
                b.amplitudes(),
                "{} amplitudes, seed {seed}",
                inner.kind_name()
            );
            assert_eq!(rng_l, rng_r, "rng streams diverged on run");
            assert_eq!(
                local.sample(&a, 200, &mut rng_l).expect("local sample"),
                remote.sample(&b, 200, &mut rng_r).expect("remote sample"),
                "{} samples, seed {seed}",
                inner.kind_name()
            );
            assert_eq!(rng_l, rng_r, "rng streams diverged on sample");
            let phi = (seed % 97) as f64 / 97.0;
            assert_eq!(
                local
                    .phase_distribution(phi, 4, &mut rng_l)
                    .expect("local phases"),
                remote
                    .phase_distribution(phi, 4, &mut rng_r)
                    .expect("remote phases"),
                "{} phase distribution, seed {seed}",
                inner.kind_name()
            );
            assert_eq!(
                local
                    .estimate_probability(phi, &mut rng_l)
                    .expect("local estimate"),
                remote
                    .estimate_probability(phi, &mut rng_r)
                    .expect("remote estimate"),
                "{} probability estimate, seed {seed}",
                inner.kind_name()
            );
            assert_eq!(rng_l, rng_r, "rng streams diverged on distributions");
            remote.recycle(b);
            local.recycle(a);
        }
    }
}

#[test]
fn noisy_backend_with_noise_diverges_from_ideal() {
    // Sanity complement to the zero-noise property: noise must do
    // *something* on a deep circuit.
    let circuit = random_circuit(3, 40, 99);
    let ideal = Statevector::new();
    let noisy = NoisyStatevector::new(0.2, 0.0);
    let mut rng = StdRng::seed_from_u64(42);
    let a = ideal.execute(&circuit, 0, &mut rng).expect("ideal");
    let b = noisy.execute(&circuit, 0, &mut rng).expect("noisy");
    assert!(
        max_amp_diff(&a, &b) > 1e-6,
        "20% depolarizing left a 40-gate circuit untouched"
    );
}

#[test]
fn kernel_tier_is_resolved_and_visible() {
    // The suite's per-tier CI runs rely on QSC_KERNELS actually steering
    // the process: the latched tier must match a forced available tier,
    // and must be an executable tier either way. (Bit-identity between
    // the tiers themselves is pinned by tests/kernel_equivalence.rs.)
    use qsc_suite::linalg::kernels::{self, KernelTier};
    let active = kernels::active();
    assert!(active.is_available());
    if let Ok(forced) = std::env::var(kernels::KERNELS_ENV) {
        match KernelTier::parse(&forced) {
            Some(tier) if tier.is_available() => assert_eq!(active, tier),
            Some(tier) => eprintln!("note: {tier} forced but unavailable on this CPU"),
            None => panic!("invalid {} value `{forced}`", kernels::KERNELS_ENV),
        }
    }
}
