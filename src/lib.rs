//! # qsc-suite — Quantum Spectral Clustering of Mixed Graphs
//!
//! Umbrella crate for the reproduction of *"Quantum Spectral Clustering of
//! Mixed Graphs"* (DAC 2021). It re-exports the workspace crates so the
//! examples and integration tests at the repository root can use a single
//! dependency:
//!
//! * [`linalg`] — dense complex linear algebra and Hermitian eigensolvers,
//! * [`graph`] — mixed graphs, Hermitian Laplacians, workload generators,
//! * [`sim`] — quantum state-vector simulator (QPE, tomography, AE),
//! * [`cluster`] — k-means / q-means and validity metrics,
//! * [`core`] — the staged `Pipeline` (classical and simulated-quantum
//!   clustering recipes).
//!
//! See `README.md` for the quickstart and `DESIGN.md` for the system
//! inventory.
//!
//! # Examples
//!
//! ```
//! use qsc_suite::core::Pipeline;
//! use qsc_suite::graph::generators::{dsbm, DsbmParams};
//!
//! # fn main() -> Result<(), qsc_suite::core::Error> {
//! let inst = dsbm(&DsbmParams { n: 30, k: 3, seed: 1, ..DsbmParams::default() })?;
//! let out = Pipeline::hermitian(3).run(&inst.graph)?;
//! assert_eq!(out.labels.len(), 30);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use qsc_cluster as cluster;
pub use qsc_core as core;
pub use qsc_graph as graph;
pub use qsc_linalg as linalg;
pub use qsc_sim as sim;
