#!/usr/bin/env bash
# Checks that every intra-repo markdown link in README.md and docs/*.md
# resolves to an existing file (anchors are stripped; http(s)/mailto
# links are skipped). Run from anywhere; exits non-zero listing every
# broken link.
set -euo pipefail

cd "$(dirname "$0")/.."

status=0
for doc in README.md docs/*.md; do
  dir=$(dirname "$doc")
  # Inline markdown links: [text](target). Reference-style links are not
  # used in this repo.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN: $doc -> $target" >&2
      status=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/.*(\(.*\))/\1/')
done

if [ "$status" -ne 0 ]; then
  echo "doc link check failed" >&2
else
  echo "doc links OK"
fi
exit "$status"
